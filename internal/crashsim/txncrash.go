package crashsim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/model"
)

// Transaction crash points: the crash matrix below runs a committed
// prefix, then opens a multi-statement transaction and crashes the
// disk at seeded points — while the transaction is buffering its
// writes, in the middle of its commit's apply phase, or after its
// commit record is durable. The invariant under test is atomicity
// across recovery: the transaction's effects survive all together
// (commit record reached the log) or not at all; uncommitted buffered
// effects never survive, and a crash before COMMIT leaves the
// database exactly at the committed prefix.

// txnMarkerBase is the first ID used by transaction-block rows, far
// above anything the prefix workload generates, so recovered state
// can be audited for partial transactions by ID range alone.
const txnMarkerBase = 900000

// txnBlock returns the transaction's statements: inserts of marker
// rows plus an update and a delete against rows the prefix committed,
// so the commit's apply phase touches both synthetic refs (fresh
// inserts) and real refs (buffered updates of stored objects).
func txnBlock() []string {
	return []string{
		fmt.Sprintf(`INSERT INTO HIST VALUES (%d, 'txn-a')`, txnMarkerBase+1),
		fmt.Sprintf(`INSERT INTO HIST VALUES (%d, 'txn-b')`, txnMarkerBase+2),
		fmt.Sprintf(`INSERT INTO EMP VALUES (%d, 'TXN', 7)`, txnMarkerBase+3),
		fmt.Sprintf(`UPDATE x IN HIST SET NOTE = 'txn-upd' WHERE x.ID = %d`, txnMarkerBase+9),
		fmt.Sprintf(`UPDATE x IN HIST SET NOTE = 'txn-c' WHERE x.ID = %d`, txnMarkerBase+1),
		fmt.Sprintf(`DELETE x FROM x IN HIST WHERE x.ID = %d`, txnMarkerBase+8),
	}
}

// txnPrefix is the committed workload before the transaction: the
// seeded DML sequence plus two rows the transaction block will update
// and delete.
func txnPrefix(wseed int64) []string {
	w := NewWorkload(wseed, 10)
	all := append(append([]string{}, w.Setup...), w.Stmts...)
	all = append(all,
		fmt.Sprintf(`INSERT INTO HIST VALUES (%d, 'base-upd')`, txnMarkerBase+9),
		fmt.Sprintf(`INSERT INTO HIST VALUES (%d, 'base-del')`, txnMarkerBase+8),
	)
	return all
}

// TxnTotalOps measures the mutating I/O operations of a crash-free
// prefix+transaction run, for sweeping crash budgets.
func TxnTotalOps(wseed int64) (int64, error) {
	var clk atomic.Int64
	clock := func() int64 { return clk.Add(1) }
	d := NewDisk()
	s := d.Open(1, -1)
	eng, err := openSession(s, clock, 8)
	if err != nil {
		return 0, err
	}
	for _, stmt := range txnPrefix(wseed) {
		if _, err := eng.Exec(stmt); err != nil {
			return 0, fmt.Errorf("crashsim: txn probe prefix failed: %w\n%s", err, stmt)
		}
	}
	tx, err := eng.Begin()
	if err != nil {
		return 0, err
	}
	for _, stmt := range txnBlock() {
		if _, err := tx.Exec(stmt); err != nil {
			return 0, fmt.Errorf("crashsim: txn probe block failed: %w\n%s", err, stmt)
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	if err := eng.Close(); err != nil {
		return 0, err
	}
	return s.Ops(), nil
}

// RunTxnCrash executes one transactional crash-recover-verify cycle
// with the crash at the budget-th mutating I/O operation.
func RunTxnCrash(wseed, budget int64) error {
	prefix := txnPrefix(wseed)
	block := txnBlock()
	var clk atomic.Int64
	clock := func() int64 { return clk.Add(1) }

	d := NewDisk()
	s := d.Open(wseed*37+budget, budget)
	committed := 0
	inFlight := false       // a prefix statement crashed mid-apply
	commitAttempted := false // tx.Commit was called
	committedTxn := false    // tx.Commit returned success
	eng, err := openSession(s, clock, 8)
	if err != nil {
		if !s.Crashed() {
			return fmt.Errorf("crashsim: txn initial open failed without a crash: %w", err)
		}
	} else {
		for i, stmt := range prefix {
			if _, err := eng.Exec(stmt); err != nil {
				if !s.Crashed() {
					return fmt.Errorf("crashsim: txn prefix statement %d failed without a crash: %w\n%s", i, err, stmt)
				}
				inFlight = true
				break
			}
			committed++
		}
		if !s.Crashed() {
			tx, err := eng.Begin()
			if err != nil {
				return fmt.Errorf("crashsim: begin failed: %w", err)
			}
			buffered := true
			for i, stmt := range block {
				if _, err := tx.Exec(stmt); err != nil {
					// Buffered writes do not touch the disk; a failure
					// here can only be a crash surfacing through a
					// snapshot read.
					if !s.Crashed() {
						return fmt.Errorf("crashsim: txn statement %d failed without a crash: %w\n%s", i, err, stmt)
					}
					buffered = false
					break
				}
			}
			if buffered {
				commitAttempted = true
				if err := tx.Commit(); err != nil {
					if !s.Crashed() {
						return fmt.Errorf("crashsim: commit failed without a crash: %w", err)
					}
				} else {
					committedTxn = true
				}
			}
			if !s.Crashed() {
				if err := eng.Close(); err != nil && !s.Crashed() {
					return fmt.Errorf("crashsim: txn clean close failed: %w", err)
				}
			}
		}
	}

	// Recover on a clean session.
	rs := d.Open(wseed*73+budget+3, -1)
	eng2, err := openSession(rs, clock, 64)
	if err != nil {
		return fmt.Errorf("crashsim: txn recovery failed: %w", err)
	}
	if err := CheckInvariants(eng2); err != nil {
		return err
	}

	// Atomicity by ID range: of the transaction's three marker
	// inserts, either none or all survive — and with them the
	// buffered update and delete. The audit only makes sense once the
	// whole prefix committed (before that the transaction never
	// started, so its effects are absent by construction).
	gotTxn := "none"
	if committed == len(prefix) {
		gotTxn, err = txnEffects(eng2)
		if err != nil {
			return err
		}
	}
	switch {
	case gotTxn == "none":
	case gotTxn == "all" && commitAttempted:
	case gotTxn == "all" && !commitAttempted:
		return fmt.Errorf("crashsim: transaction effects survived recovery but COMMIT was never invoked")
	default:
		return fmt.Errorf("crashsim: partial transaction survived recovery: %s (commit attempted: %v)", gotTxn, commitAttempted)
	}
	if committedTxn && gotTxn != "all" {
		return fmt.Errorf("crashsim: COMMIT returned success but the transaction did not survive recovery")
	}

	// State equivalence against clean replays: the committed prefix
	// alone (with or without the in-flight statement), or — only when
	// the commit was in flight or durable — the prefix plus the whole
	// transaction block.
	var candidates [][]string
	if gotTxn == "all" {
		candidates = append(candidates, append(append([]string{}, prefix...), block...))
	} else {
		candidates = append(candidates, prefix[:committed])
		if inFlight {
			candidates = append(candidates, prefix[:committed+1])
		}
	}
	var diffs []string
	for _, stmts := range candidates {
		ref, err := replayEngine(stmts, clock)
		if err != nil {
			return err
		}
		diff := compareState(eng2, ref)
		ref.Close()
		if diff == "" {
			return nil
		}
		diffs = append(diffs, diff)
	}
	return fmt.Errorf("crashsim: txn-recovered state matches no replay candidate: %v", diffs)
}

// txnEffects audits the recovered database for the transaction's
// marker rows: "none", "all", or a description of a partial survival.
func txnEffects(eng *engine.DB) (string, error) {
	found := map[int64]string{}
	for _, name := range []string{"HIST", "EMP"} {
		t, ok := eng.Catalog().Table(name)
		if !ok {
			continue
		}
		rows, err := tableRows(eng, t, 0)
		if err != nil {
			return "", err
		}
		for _, tup := range rows.Tuples {
			id, ok := tup[0].(model.Int)
			if !ok || int64(id) < txnMarkerBase {
				continue
			}
			found[int64(id)] = tup[1].String()
		}
	}
	// Rows the prefix committed don't count as transaction effects
	// unless the transaction rewrote or deleted them.
	inserted := 0
	for _, id := range []int64{txnMarkerBase + 1, txnMarkerBase + 2, txnMarkerBase + 3} {
		if _, ok := found[id]; ok {
			inserted++
		}
	}
	updated := found[txnMarkerBase+9] == "txn-upd"
	_, delSurvived := found[txnMarkerBase+8]
	deleted := !delSurvived
	switch {
	case inserted == 0 && !updated && !deleted:
		return "none", nil
	case inserted == 3 && updated && deleted && found[txnMarkerBase+1] == "txn-c":
		return "all", nil
	default:
		return fmt.Sprintf("inserted %d/3, updated %v, deleted %v", inserted, updated, deleted), nil
	}
}
