package crashsim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/page"
)

// stmtCount is the length of the generated DML sequence per workload.
const stmtCount = 40

// snapshot records the visible HIST rows at a logical instant of the
// faulted run; after recovery the same ASOF query must reproduce it.
type snapshot struct {
	ts   int64
	rows *model.Table
}

// openSession opens an engine over a disk session with a small buffer
// pool, so eviction steals uncommitted dirty pages and the recovery
// path has to cope with them.
func openSession(s *Session, clock func() int64, poolPages int) (*engine.DB, error) {
	return engine.Open(engine.Options{
		PoolPages:   poolPages,
		Clock:       clock,
		OpenStore:   s.OpenStore,
		OpenWALFile: s.OpenWALFile,
	})
}

// TotalOps runs the workload to completion with no crash and returns
// how many mutating I/O operations it issues; the crash matrix sweeps
// budgets across this range.
func TotalOps(wseed int64) (int64, error) {
	w := NewWorkload(wseed, stmtCount)
	var clk atomic.Int64
	clock := func() int64 { return clk.Add(1) }
	d := NewDisk()
	s := d.Open(1, -1)
	eng, err := openSession(s, clock, 8)
	if err != nil {
		return 0, err
	}
	for _, stmt := range append(append([]string{}, w.Setup...), w.Stmts...) {
		if _, err := eng.Exec(stmt); err != nil {
			return 0, fmt.Errorf("crashsim: probe statement failed: %w\n%s", err, stmt)
		}
	}
	if err := eng.Close(); err != nil {
		return 0, err
	}
	return s.Ops(), nil
}

// RunCrash executes one crash-recover-verify cycle: run the seeded
// workload until the injected crash at the budget-th mutating I/O
// operation, settle the disk with seeded torn/lost-write outcomes,
// recover (with recBudget >= 0 the recovery itself is crashed once and
// retried), and verify every invariant plus state equivalence against
// a clean replay of the committed statements. Budget < 0 exercises the
// crash-free path (clean close, settle, reopen).
func RunCrash(wseed, budget, recBudget int64) error {
	w := NewWorkload(wseed, stmtCount)
	all := append(append([]string{}, w.Setup...), w.Stmts...)
	var clk atomic.Int64
	clock := func() int64 { return clk.Add(1) }

	d := NewDisk()
	s := d.Open(wseed*31+budget, budget)
	committed := 0
	inFlight := false
	var snaps []snapshot
	eng, err := openSession(s, clock, 8)
	if err != nil {
		if !s.Crashed() {
			return fmt.Errorf("crashsim: initial open failed without a crash: %w", err)
		}
	} else {
	loop:
		for i, stmt := range all {
			if _, err := eng.Exec(stmt); err != nil {
				if !s.Crashed() {
					return fmt.Errorf("crashsim: statement %d failed without a crash: %w\n%s", i, err, stmt)
				}
				inFlight = true
				break
			}
			committed++
			// Tick the clock for the snapshot instant so ASOF ts is
			// never 0 ("current") and strictly precedes later versions.
			switch snap, err := histSnapshot(eng, clk.Add(1)); {
			case err != nil:
				if !s.Crashed() {
					return fmt.Errorf("crashsim: snapshot after statement %d failed without a crash: %w", i, err)
				}
				break loop
			case snap != nil:
				snaps = append(snaps, *snap)
			}
		}
		if !s.Crashed() {
			if err := eng.Close(); err != nil && !s.Crashed() {
				return fmt.Errorf("crashsim: clean close failed: %w", err)
			}
		}
	}

	// Recover. With recBudget >= 0 the first recovery attempt is
	// itself crashed (wherever its budget lands) and retried on a
	// clean session — recovery must be idempotent.
	var eng2 *engine.DB
	if recBudget >= 0 {
		rs := d.Open(wseed*57+budget+1, recBudget)
		if _, err := openSession(rs, clock, 8); err != nil && !rs.Crashed() {
			return fmt.Errorf("crashsim: budgeted recovery failed without a crash: %w", err)
		}
	}
	rs := d.Open(wseed*91+budget+7, -1)
	eng2, err = openSession(rs, clock, 64)
	if err != nil {
		return fmt.Errorf("crashsim: recovery failed: %w", err)
	}

	if err := CheckInvariants(eng2); err != nil {
		return err
	}

	// State equivalence: the recovered database must equal a clean
	// replay of the committed prefix — or, when the crash interrupted
	// a statement whose commit record may or may not have reached the
	// durable log, the replay including that statement.
	refA, err := replayEngine(all[:committed], clock)
	if err != nil {
		return err
	}
	diffA := compareState(eng2, refA)
	if diffA != "" {
		if !inFlight {
			return fmt.Errorf("crashsim: recovered state differs from committed replay: %s", diffA)
		}
		refB, err := replayEngine(all[:committed+1], clock)
		if err != nil {
			return err
		}
		if diffB := compareState(eng2, refB); diffB != "" {
			return fmt.Errorf("crashsim: recovered state matches neither replay\nwithout in-flight: %s\nwith in-flight: %s", diffA, diffB)
		}
	}

	// ASOF: history rebuilt from the log must reproduce the snapshots
	// the faulted run saw. Every recorded snapshot followed a
	// successfully committed statement, so all of them must hold.
	for _, sn := range snaps {
		t, ok := eng2.Catalog().Table("HIST")
		if !ok {
			return fmt.Errorf("crashsim: HIST vanished despite a recorded snapshot")
		}
		rows, err := tableRows(eng2, t, sn.ts)
		if err != nil {
			return fmt.Errorf("crashsim: ASOF %d scan: %w", sn.ts, err)
		}
		if !model.TableEqual(rows, sn.rows) {
			return fmt.Errorf("crashsim: HIST ASOF %d differs from the snapshot taken before the crash", sn.ts)
		}
	}

	// The recovered database must remain fully usable: run new DML,
	// close cleanly, reopen, and re-audit. Early crash points recover
	// to a state from before CREATE TABLE EMP committed.
	if _, ok := eng2.Catalog().Table("EMP"); !ok {
		if _, err := eng2.Exec(w.Setup[0]); err != nil {
			return fmt.Errorf("crashsim: post-recovery create: %w", err)
		}
	}
	if _, err := eng2.Exec(`INSERT INTO EMP VALUES (999999, 'POST', 1)`); err != nil {
		return fmt.Errorf("crashsim: post-recovery insert: %w", err)
	}
	if err := eng2.Close(); err != nil {
		return fmt.Errorf("crashsim: post-recovery close: %w", err)
	}
	fs := d.Open(wseed*101+budget+11, -1)
	eng3, err := openSession(fs, clock, 64)
	if err != nil {
		return fmt.Errorf("crashsim: reopen after recovery: %w", err)
	}
	if err := CheckInvariants(eng3); err != nil {
		return fmt.Errorf("crashsim: after clean reopen: %w", err)
	}
	t, _ := eng3.Catalog().Table("EMP")
	rows, err := tableRows(eng3, t, 0)
	if err != nil {
		return err
	}
	for _, tup := range rows.Tuples {
		if v, ok := tup[0].(model.Int); ok && int64(v) == 999999 {
			return nil
		}
	}
	return fmt.Errorf("crashsim: post-recovery insert not visible after reopen")
}

// histSnapshot captures the current HIST rows (nil before the table
// exists) together with the logical timestamp ts.
func histSnapshot(eng *engine.DB, ts int64) (*snapshot, error) {
	t, ok := eng.Catalog().Table("HIST")
	if !ok {
		return nil, nil
	}
	rows, err := tableRows(eng, t, 0)
	if err != nil {
		return nil, err
	}
	return &snapshot{ts: ts, rows: rows}, nil
}

// tableRows materializes a stored table (optionally as of an instant)
// into a table value for comparison.
func tableRows(eng *engine.DB, t *catalog.Table, asof int64) (*model.Table, error) {
	tbl := &model.Table{Ordered: t.Type.Ordered}
	err := eng.ScanTable(t, asof, func(_ page.TID, tup model.Tuple) error {
		tbl.Tuples = append(tbl.Tuples, tup.Clone())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tbl, nil
}

// replayEngine executes the statements on a fresh in-memory engine:
// the oracle for what the recovered database must contain.
func replayEngine(stmts []string, clock func() int64) (*engine.DB, error) {
	ref, err := engine.Open(engine.Options{Clock: clock})
	if err != nil {
		return nil, err
	}
	for i, stmt := range stmts {
		if _, err := ref.Exec(stmt); err != nil {
			return nil, fmt.Errorf("crashsim: oracle replay statement %d failed: %w\n%s", i, err, stmt)
		}
	}
	return ref, nil
}

// CompareState reports a human-readable difference between two
// engines' logical states ("" when equal); the soft-chaos harness
// (internal/faultsim) reuses it to compare a live engine against its
// oracle after an aborted statement.
func CompareState(got, want *engine.DB) string { return compareState(got, want) }

// compareState reports a human-readable difference between the two
// engines' logical states ("" when equal): same table set, and every
// table equal as a (multi)set of deeply-compared tuples.
func compareState(got, want *engine.DB) string {
	gn := tableNames(got)
	wn := tableNames(want)
	if fmt.Sprint(gn) != fmt.Sprint(wn) {
		return fmt.Sprintf("table sets differ: recovered %v, replay %v", gn, wn)
	}
	for _, name := range gn {
		gt, _ := got.Catalog().Table(name)
		wt, _ := want.Catalog().Table(name)
		grows, err := tableRows(got, gt, 0)
		if err != nil {
			return fmt.Sprintf("scan recovered %s: %v", name, err)
		}
		wrows, err := tableRows(want, wt, 0)
		if err != nil {
			return fmt.Sprintf("scan replay %s: %v", name, err)
		}
		if !model.TableEqual(grows, wrows) {
			return fmt.Sprintf("table %s differs: recovered %d rows, replay %d rows",
				name, len(grows.Tuples), len(wrows.Tuples))
		}
	}
	return ""
}

func tableNames(eng *engine.DB) []string {
	var names []string
	for _, t := range eng.Catalog().Tables() {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}
