package crashsim

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/page"
	"repro/internal/segment"
)

// CheckInvariants audits a (typically just-recovered) engine:
//
//   - every durable page of every segment passes its checksum and
//     carries an LSN within the log's bounds;
//   - every object of every table materializes: flat tuples decode and
//     conform to the schema, complex objects walk their full
//     Mini-Directory (including D/C pointers, via ObjectStats);
//   - every index entry round-trips to a live subtuple holding the
//     indexed value, and every indexed value occurrence in the data is
//     reachable through the index.
func CheckInvariants(eng *engine.DB) error {
	if err := checkPages(eng); err != nil {
		return err
	}
	if err := checkObjects(eng); err != nil {
		return err
	}
	return checkIndexes(eng)
}

// checkPages verifies checksums and LSN bounds of the durable image
// of every segment (the meta segment plus every table segment).
func checkPages(eng *engine.DB) error {
	segs := map[uint16]bool{uint16(catalog.MetaSegment): true}
	for _, t := range eng.Catalog().Tables() {
		segs[uint16(t.Seg)] = true
	}
	ids := make([]int, 0, len(segs))
	for id := range segs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	end := uint64(0)
	if eng.Log() != nil {
		end = eng.Log().End()
	}
	buf := make([]byte, page.Size)
	for _, id := range ids {
		st := eng.Pool().Store(segment.ID(id))
		if st == nil {
			return fmt.Errorf("crashsim: segment %d has no store", id)
		}
		for no := uint32(1); no <= st.PageCount(); no++ {
			if err := st.ReadPage(no, buf); err != nil {
				return fmt.Errorf("crashsim: read page %d.%d: %w", id, no, err)
			}
			p := page.View(buf)
			if !p.ChecksumOK(uint16(id), no) {
				return fmt.Errorf("crashsim: page %d.%d fails checksum after recovery", id, no)
			}
			if eng.Log() != nil && p.LSN() > end {
				return fmt.Errorf("crashsim: page %d.%d LSN %d beyond log end %d", id, no, p.LSN(), end)
			}
		}
	}
	return nil
}

// checkObjects materializes every tuple of every table and, for
// complex tables, walks the full physical object structure.
func checkObjects(eng *engine.DB) error {
	for _, t := range eng.Catalog().Tables() {
		refs, err := eng.Refs(t.Name)
		if err != nil {
			return fmt.Errorf("crashsim: directory of %s: %w", t.Name, err)
		}
		for _, ref := range refs {
			tup, err := eng.ReadRef(t, ref, 0)
			if err != nil {
				return fmt.Errorf("crashsim: read %s %v: %w", t.Name, ref, err)
			}
			if err := model.Conform(t.Type, tup); err != nil {
				return fmt.Errorf("crashsim: %s %v violates schema: %w", t.Name, ref, err)
			}
			if t.Kind == catalog.Complex {
				m, _ := eng.Manager(t.Name)
				if _, err := m.ObjectStats(t.Type, ref); err != nil {
					return fmt.Errorf("crashsim: object walk %s %v: %w", t.Name, ref, err)
				}
			}
		}
	}
	return nil
}

// occurrence is one indexed value in the data, keyed by the root
// reference the index must report for it.
type occurrence struct {
	ref page.TID
	val model.Value
}

// checkIndexes verifies both directions of every value index: data
// occurrence -> index entry and index entry -> live subtuple.
func checkIndexes(eng *engine.DB) error {
	cat := eng.Catalog()
	for _, t := range cat.Tables() {
		for _, def := range cat.Indexes(t.Name) {
			if def.Text {
				continue
			}
			ix, ok := eng.IndexByName(def.Name)
			if !ok {
				return fmt.Errorf("crashsim: index %s not rebuilt", def.Name)
			}
			_, _, atomPos, _, err := index.ResolvePath(t.Type, def.Path)
			if err != nil {
				return fmt.Errorf("crashsim: index %s path: %w", def.Name, err)
			}
			occs, err := indexedOccurrences(eng, t, def.Path)
			if err != nil {
				return err
			}
			// Every entry resolves to a live subtuple with the key's value.
			entries := 0
			var entErr error
			ix.Tree().Range(nil, nil, func(key []byte, addrs []index.Addr) bool {
				for _, addr := range addrs {
					entries++
					if err := resolveEntry(eng, t, ix, addr, atomPos, key); err != nil {
						entErr = fmt.Errorf("crashsim: index %s entry %v: %w", def.Name, addr.TID, err)
						return false
					}
				}
				return true
			})
			if entErr != nil {
				return entErr
			}
			if entries != len(occs) {
				return fmt.Errorf("crashsim: index %s has %d entries, data has %d occurrences",
					def.Name, entries, len(occs))
			}
			// Every occurrence is reachable through the index.
			for _, oc := range occs {
				addrs, err := ix.Lookup(oc.val)
				if err != nil {
					return fmt.Errorf("crashsim: index %s lookup %v: %w", def.Name, oc.val, err)
				}
				found := false
				for _, addr := range addrs {
					if addr.TID == oc.ref {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("crashsim: index %s misses %v of %s %v", def.Name, oc.val, t.Name, oc.ref)
				}
			}
		}
	}
	return nil
}

// resolveEntry follows one index address back to stored data and
// confirms the indexed attribute still holds the entry's key.
func resolveEntry(eng *engine.DB, t *catalog.Table, ix *index.Index, addr index.Addr, atomPos int, key []byte) error {
	if len(addr.Path) == 0 {
		// Flat (or root-TID) address: the tuple itself must exist.
		if _, err := eng.ReadRef(t, addr.TID, 0); err != nil {
			return err
		}
		return nil
	}
	m, ok := eng.Manager(t.Name)
	if !ok {
		return fmt.Errorf("no manager for %s", t.Name)
	}
	atoms, err := m.ReadDataPath(addr.TID, addr.Path)
	if err != nil {
		return err
	}
	if atomPos >= len(atoms) {
		return fmt.Errorf("data subtuple has %d atoms, index expects position %d", len(atoms), atomPos)
	}
	got, err := model.EncodeKeyValue(atoms[atomPos])
	if err != nil {
		return err
	}
	if !bytes.Equal(got, key) {
		return fmt.Errorf("stored value %v does not match index key", atoms[atomPos])
	}
	return nil
}

// indexedOccurrences collects every value the index ought to contain
// by walking the logical data along the index path.
func indexedOccurrences(eng *engine.DB, t *catalog.Table, path []string) ([]occurrence, error) {
	var occs []occurrence
	err := eng.ScanTable(t, 0, func(ref page.TID, tup model.Tuple) error {
		for _, v := range pathValues(t.Type, tup, path) {
			occs = append(occs, occurrence{ref: ref, val: v})
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("crashsim: scan %s: %w", t.Name, err)
	}
	return occs, nil
}

// pathValues walks one tuple along an attribute path, descending
// through subtables, and returns every value at the path's end.
func pathValues(tt *model.TableType, tup model.Tuple, path []string) []model.Value {
	ai := tt.AttrIndex(path[0])
	if ai < 0 || ai >= len(tup) {
		return nil
	}
	if len(path) == 1 {
		return []model.Value{tup[ai]}
	}
	sub, ok := tup[ai].(*model.Table)
	if !ok {
		return nil
	}
	var vals []model.Value
	for _, member := range sub.Tuples {
		vals = append(vals, pathValues(tt.Attrs[ai].Type.Table, member, path[1:])...)
	}
	return vals
}
