package crashsim

import (
	"fmt"
	"math/rand"
	"strings"
)

// Workload is a seeded NF² SQL script: a fixed schema setup followed
// by a generated DML sequence. Statements are generated up front from
// the seed alone, so a crashed run and its replay oracle execute
// byte-identical statements.
type Workload struct {
	// Setup creates the tables and indexes: a flat table, one complex
	// table per Mini-Directory layout (SS1..SS3, with unordered and
	// ordered subtables), and a versioned table for ASOF history.
	Setup []string
	// Stmts is the DML sequence.
	Stmts []string
}

// deptTables are the complex tables, one per storage layout.
var deptTables = []string{"DEPT1", "DEPT2", "DEPT3"}

const deptBody = `(DNO INT, BUDGET INT,
  PROJECTS TABLE OF (PNO INT, MEMBERS TABLE OF (MNO INT, ROLE STRING)),
  EQUIP LIST OF (QU INT, ETYPE STRING))`

// NewWorkload generates a workload of n DML statements from the seed.
func NewWorkload(seed int64, n int) *Workload {
	g := &wgen{
		rng:      rand.New(rand.NewSource(seed ^ 0x5DEECE66D)),
		nextID:   1,
		projects: make(map[string]map[int][]int),
		depts:    make(map[string][]int),
	}
	w := &Workload{
		Setup: []string{
			`CREATE TABLE EMP (ENO INT, NAME STRING, SAL INT)`,
			`CREATE TABLE DEPT1 ` + deptBody + ` VERSIONED LAYOUT SS1`,
			`CREATE TABLE DEPT2 ` + deptBody + ` LAYOUT SS2`,
			`CREATE TABLE DEPT3 ` + deptBody + ` LAYOUT SS3`,
			`CREATE TABLE HIST (ID INT, NOTE STRING) VERSIONED`,
			`CREATE INDEX EMP_ENO ON EMP (ENO)`,
			`CREATE INDEX DEPT3_PNO ON DEPT3 (PROJECTS.PNO) USING HIERARCHICAL`,
		},
	}
	for i := 0; i < n; i++ {
		w.Stmts = append(w.Stmts, g.next())
	}
	return w
}

// wgen tracks enough of the logical state to keep generated
// statements referencing live rows. Statements that end up matching
// nothing (e.g. after a crash-free full run deletes a row twice) are
// still valid SQL and still deterministic.
type wgen struct {
	rng      *rand.Rand
	nextID   int
	emps     []int
	hist     []int
	depts    map[string][]int       // live DNOs per complex table
	projects map[string]map[int][]int // live PNOs per table and DNO
}

func (g *wgen) id() int { g.nextID++; return g.nextID - 1 }

func (g *wgen) pick(s []int) int { return s[g.rng.Intn(len(s))] }

func remove(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func (g *wgen) deptTable() string { return deptTables[g.rng.Intn(len(deptTables))] }

func (g *wgen) next() string {
	for {
		switch k := g.rng.Intn(100); {
		case k < 16: // flat insert
			eno := g.id()
			g.emps = append(g.emps, eno)
			return fmt.Sprintf(`INSERT INTO EMP VALUES (%d, 'N%d', %d)`, eno, eno, 1000+g.rng.Intn(9000))
		case k < 24: // flat update
			if len(g.emps) == 0 {
				continue
			}
			return fmt.Sprintf(`UPDATE e IN EMP SET SAL = %d WHERE e.ENO = %d`,
				1000+g.rng.Intn(9000), g.pick(g.emps))
		case k < 30: // flat delete
			if len(g.emps) == 0 {
				continue
			}
			eno := g.pick(g.emps)
			g.emps = remove(g.emps, eno)
			return fmt.Sprintf(`DELETE e FROM e IN EMP WHERE e.ENO = %d`, eno)
		case k < 44: // complex-object insert
			t := g.deptTable()
			dno := g.id()
			g.depts[t] = append(g.depts[t], dno)
			if g.projects[t] == nil {
				g.projects[t] = make(map[int][]int)
			}
			var projLit, equipLit string
			if g.rng.Intn(4) == 0 {
				projLit, equipLit = `{}`, `<>`
			} else {
				pno := g.id()
				g.projects[t][dno] = []int{pno}
				projLit = fmt.Sprintf(`{(%d, {(%d, 'R%d')})}`, pno, g.id(), g.rng.Intn(9))
				equipLit = fmt.Sprintf(`<(%d, 'E%d'), (%d, 'E%d')>`,
					1+g.rng.Intn(9), g.rng.Intn(9), 1+g.rng.Intn(9), g.rng.Intn(9))
			}
			return fmt.Sprintf(`INSERT INTO %s VALUES (%d, %d, %s, %s)`,
				t, dno, 10000+g.rng.Intn(90000), projLit, equipLit)
		case k < 52: // complex-object atomic update
			t := g.deptTable()
			if len(g.depts[t]) == 0 {
				continue
			}
			return fmt.Sprintf(`UPDATE x IN %s SET BUDGET = %d WHERE x.DNO = %d`,
				t, 10000+g.rng.Intn(90000), g.pick(g.depts[t]))
		case k < 58: // complex-object delete
			t := g.deptTable()
			if len(g.depts[t]) == 0 {
				continue
			}
			dno := g.pick(g.depts[t])
			g.depts[t] = remove(g.depts[t], dno)
			delete(g.projects[t], dno)
			return fmt.Sprintf(`DELETE x FROM x IN %s WHERE x.DNO = %d`, t, dno)
		case k < 70: // subtable member insert (unordered PROJECTS)
			t := g.deptTable()
			if len(g.depts[t]) == 0 {
				continue
			}
			dno := g.pick(g.depts[t])
			pno := g.id()
			g.projects[t][dno] = append(g.projects[t][dno], pno)
			return fmt.Sprintf(`INSERT INTO x.PROJECTS FROM x IN %s WHERE x.DNO = %d VALUES (%d, {(%d, 'R%d')})`,
				t, dno, pno, g.id(), g.rng.Intn(9))
		case k < 76: // subtable member insert (ordered EQUIP)
			t := g.deptTable()
			if len(g.depts[t]) == 0 {
				continue
			}
			return fmt.Sprintf(`INSERT INTO x.EQUIP FROM x IN %s WHERE x.DNO = %d VALUES (%d, 'E%d')`,
				t, g.pick(g.depts[t]), 1+g.rng.Intn(9), g.rng.Intn(9))
		case k < 80: // subtable member delete
			t := g.deptTable()
			var dnos []int
			for dno, pnos := range g.projects[t] {
				if len(pnos) > 0 {
					dnos = append(dnos, dno)
				}
			}
			if len(dnos) == 0 {
				continue
			}
			// Map iteration order is irrelevant: the choice below keys
			// on the PNO value, which is unique.
			best := 0
			for _, dno := range dnos {
				for _, pno := range g.projects[t][dno] {
					if pno > best {
						best = pno
					}
				}
			}
			for _, dno := range dnos {
				g.projects[t][dno] = remove(g.projects[t][dno], best)
			}
			return fmt.Sprintf(`DELETE p FROM x IN %s, p IN x.PROJECTS WHERE p.PNO = %d`, t, best)
		case k < 90: // versioned insert, occasionally overflow-length
			id := g.id()
			g.hist = append(g.hist, id)
			note := fmt.Sprintf("note-%d", id)
			if g.rng.Intn(5) == 0 {
				// ~6000 chars: longer than a page's max record, forcing
				// an overflow chunk chain through the WAL.
				note = strings.Repeat(note+".", 6000/(len(note)+1))
			}
			return fmt.Sprintf(`INSERT INTO HIST VALUES (%d, '%s')`, id, note)
		default: // versioned update (grows ASOF history)
			if len(g.hist) == 0 {
				continue
			}
			id := g.pick(g.hist)
			return fmt.Sprintf(`UPDATE h IN HIST SET NOTE = 'rev-%d-%d' WHERE h.ID = %d`, id, g.id(), id)
		}
	}
}
