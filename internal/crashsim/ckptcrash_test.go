package crashsim

import (
	"sync/atomic"
	"testing"
)

// TestCkptCrashMatrix sweeps seeded crash points across the
// checkpointing, segment-rolling workload: segment creation, segment
// removal, the checkpoint's page flushes and its record write are all
// failpoints in the budget range, so the sweep lands inside rolls,
// checkpoints and recycling as well as inside ordinary statements. A
// subset of iterations also crashes the first recovery attempt.
func TestCkptCrashMatrix(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 12
	}
	var total int64
	wseed := int64(-1)
	for i := 0; i < iterations; i++ {
		ws := int64(1 + i/10) // fresh workload every 10 crash points
		if ws != wseed {
			wseed = ws
			var err error
			total, err = CkptTotalOps(wseed)
			if err != nil {
				t.Fatalf("workload %d probe: %v", wseed, err)
			}
			if total < 40 {
				t.Fatalf("workload %d issues only %d mutating ops; harness miswired", wseed, total)
			}
		}
		budget := 1 + (int64(i)*2654435761)%total
		recBudget := int64(-1)
		if i%7 == 2 {
			recBudget = 1 + int64(i)%29 // also crash the recovery run
		}
		if err := RunCkptCrash(wseed, budget, recBudget); err != nil {
			t.Fatalf("workload %d budget %d/%d recBudget %d: %v", wseed, budget, total, recBudget, err)
		}
	}
}

// TestCkptCleanRun exercises the crash-free checkpointing path: the
// full workload with periodic checkpoints, clean close, reopen, and
// the state must equal the full replay.
func TestCkptCleanRun(t *testing.T) {
	if err := RunCkptCrash(9, -1, -1); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitCrashMatrix crashes runs with concurrent auto-commit
// writers sharing fsyncs and verifies the acknowledgement contract
// across recovery: acknowledged inserts survive, surviving rows were
// attempted, nothing duplicates.
func TestGroupCommitCrashMatrix(t *testing.T) {
	writers := 4
	total, err := GCTotalOps(writers)
	if err != nil {
		t.Fatalf("group-commit probe: %v", err)
	}
	iterations := 16
	if testing.Short() {
		iterations = 5
	}
	for i := 0; i < iterations; i++ {
		budget := 1 + (int64(i)*2654435761)%total
		if err := RunGroupCommitCrash(int64(i+1), budget, writers); err != nil {
			t.Fatalf("seed %d budget %d/%d: %v", i+1, budget, total, err)
		}
	}
}

// TestRecoveryBounded pins the point of checkpoints: the bytes a
// reopen must replay depend on the log written since the last
// checkpoint, not on the length of the history before it. A workload
// four times longer (same statement mix, same checkpoint cadence)
// must reopen with an (almost) unchanged replay tail, while the total
// log grows several-fold; and recycling must keep the retained
// segment chain from growing with history.
func TestRecoveryBounded(t *testing.T) {
	shortTail, shortEnd, shortSegs := replayTailAfter(t, 40)
	longTail, longEnd, longSegs := replayTailAfter(t, 160)
	if longEnd < shortEnd*2 {
		t.Fatalf("long history wrote %d log bytes, short %d; workload miswired", longEnd, shortEnd)
	}
	// The tail is at most the records of one checkpoint interval; give
	// it 3x slack for statement-size variance between the two runs.
	if longTail > 3*shortTail {
		t.Fatalf("replay tail grew with history: %d bytes after 160 statements vs %d after 40", longTail, shortTail)
	}
	// Segment retention tracks the tail, not the history: allow the
	// same statement-size slack as the byte bound.
	if longSegs > 3*shortSegs {
		t.Fatalf("retained segments grew with history: %d after 160 statements vs %d after 40", longSegs, shortSegs)
	}
}

// replayTailAfter runs h workload statements with periodic
// checkpoints, closes cleanly, reopens, and reports the reopened
// log's replay-tail size, total size, and retained segment count.
func replayTailAfter(t *testing.T, h int) (tail, end uint64, segs int) {
	t.Helper()
	w := NewWorkload(5, h)
	var clk atomic.Int64
	clock := func() int64 { return clk.Add(1) }
	d := NewDisk()
	s := d.Open(1, -1)
	eng, err := openCkptSession(s, clock, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, stmt := range append(append([]string{}, w.Setup...), w.Stmts...) {
		if _, err := eng.Exec(stmt); err != nil {
			t.Fatalf("statement %d: %v", i, err)
		}
		if (i+1)%ckptEvery == 0 {
			if err := eng.WALCheckpoint(); err != nil {
				t.Fatalf("checkpoint after statement %d: %v", i, err)
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	rs := d.Open(2, -1)
	eng2, err := openCkptSession(rs, clock, 64)
	if err != nil {
		t.Fatalf("reopen after %d statements: %v", h, err)
	}
	defer eng2.Close()
	ws := eng2.WALStats()
	if ws.CheckpointLSN == 0 {
		t.Fatalf("no checkpoint found after %d statements", h)
	}
	return ws.End - ws.TailStart, ws.End, ws.Segments
}
