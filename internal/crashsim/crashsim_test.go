package crashsim

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/page"
)

// TestCrashMatrix sweeps seeded crash points across the whole
// workload: for each workload seed it measures the total number of
// mutating I/O operations, then crashes runs at budgets striding that
// range, recovering and verifying every invariant after each crash. A
// subset of iterations also crashes the recovery itself and recovers
// again.
func TestCrashMatrix(t *testing.T) {
	iterations := 200
	if testing.Short() {
		iterations = 25
	}
	var total int64
	wseed := int64(-1)
	for i := 0; i < iterations; i++ {
		ws := int64(1 + i/8) // fresh workload every 8 crash points
		if ws != wseed {
			wseed = ws
			var err error
			total, err = TotalOps(wseed)
			if err != nil {
				t.Fatalf("workload %d probe: %v", wseed, err)
			}
			if total < 20 {
				t.Fatalf("workload %d issues only %d mutating ops; harness miswired", wseed, total)
			}
		}
		budget := 1 + (int64(i)*2654435761)%total
		recBudget := int64(-1)
		if i%9 == 3 {
			recBudget = 1 + int64(i)%23 // also crash the recovery run
		}
		if err := RunCrash(wseed, budget, recBudget); err != nil {
			t.Fatalf("workload %d budget %d/%d recBudget %d: %v", wseed, budget, total, recBudget, err)
		}
	}
}

// TestCleanRun exercises the no-crash path: run everything, close,
// settle, recover, and the state must equal the full replay.
func TestCleanRun(t *testing.T) {
	if err := RunCrash(12, -1, -1); err != nil {
		t.Fatal(err)
	}
}

// TestInjector pins the budget semantics: ops before the budget
// succeed, the budget-th op fires the crash, and everything after is
// dead.
func TestInjector(t *testing.T) {
	in := NewInjector(7, 3)
	for i := 0; i < 2; i++ {
		crashNow, err := in.step()
		if crashNow || err != nil {
			t.Fatalf("op %d: crashNow=%v err=%v, want clean", i+1, crashNow, err)
		}
	}
	crashNow, err := in.step()
	if !crashNow || err != nil {
		t.Fatalf("op 3: crashNow=%v err=%v, want crash", crashNow, err)
	}
	if !in.Crashed() {
		t.Fatal("injector not crashed after firing")
	}
	if _, err := in.step(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 4: err=%v, want ErrCrashed", err)
	}
}

// TestFaultStoreCrash verifies that the crashing write applies only a
// sector prefix and that all subsequent I/O on the session fails.
func TestFaultStoreCrash(t *testing.T) {
	d := NewDisk()
	s := d.Open(42, 2)
	st, err := s.OpenStore(5)
	if err != nil {
		t.Fatal(err)
	}
	no := st.Allocate()
	ones := bytes.Repeat([]byte{0xAA}, page.Size)
	if err := st.WritePage(no, ones); err != nil {
		t.Fatalf("first write: %v", err)
	}
	twos := bytes.Repeat([]byte{0xBB}, page.Size)
	if err := st.WritePage(no, twos); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second write: err=%v, want ErrCrashed", err)
	}
	if err := st.ReadPage(no, make([]byte, page.Size)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: err=%v, want ErrCrashed", err)
	}
	if err := st.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: err=%v, want ErrCrashed", err)
	}
	// The torn image mixes whole sectors of old and new content.
	s2 := d.Open(43, -1)
	st2, _ := s2.OpenStore(5)
	got := make([]byte, page.Size)
	if st2.PageCount() >= no {
		if err := st2.ReadPage(no, got); err != nil {
			t.Fatal(err)
		}
		for off := 0; off < page.Size; off += sectorSize {
			sec := got[off : off+sectorSize]
			if !bytes.Equal(sec, ones[:sectorSize]) && !bytes.Equal(sec, twos[:sectorSize]) &&
				!bytes.Equal(sec, make([]byte, sectorSize)) {
				t.Fatalf("sector at %d is neither old, new, nor zero", off)
			}
		}
	}
}

// TestSettleDeterminism: identical seeds and operations must settle to
// identical durable state, or crash points would not be reproducible.
func TestSettleDeterminism(t *testing.T) {
	build := func() *Disk {
		d := NewDisk()
		s := d.Open(99, 7)
		st, _ := s.OpenStore(3)
		f, _ := s.OpenWALFile()
		for i := 0; i < 10; i++ {
			no := st.Allocate()
			buf := bytes.Repeat([]byte{byte(i + 1)}, page.Size)
			if err := st.WritePage(no, buf); err != nil {
				break
			}
			if i%3 == 0 {
				if _, err := f.Write([]byte(fmt.Sprintf("record-%d", i))); err != nil {
					break
				}
			}
			if i%4 == 0 {
				if err := f.Sync(); err != nil {
					break
				}
			}
		}
		d.Open(100, -1) // settle
		return d
	}
	a, b := build(), build()
	if !bytes.Equal(a.wal, b.wal) {
		t.Fatalf("durable WAL differs between identical runs")
	}
	if len(a.segs) != len(b.segs) {
		t.Fatalf("segment sets differ")
	}
	for id, ia := range a.segs {
		ib := b.segs[id]
		if ib == nil || ia.count != ib.count || len(ia.pages) != len(ib.pages) {
			t.Fatalf("segment %d images differ", id)
		}
		for no, pa := range ia.pages {
			if !bytes.Equal(pa, ib.pages[no]) {
				t.Fatalf("segment %d page %d differs", id, no)
			}
		}
	}
}

// TestWALPrefixSettlement: the durable log after a crash is always a
// prefix of what was written, and never shorter than the synced
// boundary.
func TestWALPrefixSettlement(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		d := NewDisk()
		s := d.Open(seed, 5)
		f, _ := s.OpenWALFile()
		var written []byte
		var synced int
		for i := 0; ; i++ {
			chunk := bytes.Repeat([]byte{byte(i + 1)}, 64)
			n, err := f.Write(chunk)
			written = append(written, chunk[:n]...)
			if err != nil {
				break
			}
			if err := f.Sync(); err != nil {
				break
			}
			synced = len(written)
		}
		d.Open(seed+1000, -1) // settle
		if d.WALSize() < synced {
			t.Fatalf("seed %d: durable log %d shorter than synced boundary %d", seed, d.WALSize(), synced)
		}
		if !bytes.Equal(d.wal, written[:d.WALSize()]) {
			t.Fatalf("seed %d: durable log is not a prefix of the written bytes", seed)
		}
	}
}
