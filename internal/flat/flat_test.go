package flat

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/model"
	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/subtuple"
	"repro/internal/testdata"
)

func newFlat(t testing.TB, versioned bool) *Store {
	t.Helper()
	pool := buffer.NewPool(64)
	pool.Register(1, segment.NewMemStore())
	var clock func() int64
	if versioned {
		ts := int64(0)
		clock = func() int64 { ts++; return ts }
	}
	st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1, Versioned: versioned, Clock: clock})
	s, err := New(st, testdata.EmployeesType())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRejectsNestedType(t *testing.T) {
	pool := buffer.NewPool(8)
	pool.Register(1, segment.NewMemStore())
	st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
	if _, err := New(st, testdata.DepartmentsType()); err == nil {
		t.Error("nested type accepted by flat store")
	}
}

func TestCRUD(t *testing.T) {
	s := newFlat(t, false)
	emp := testdata.Employees().Tuples[0]
	tid, err := s.Insert(emp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(tid)
	if err != nil || !model.TupleEqual(got, emp) {
		t.Fatalf("read = %v, %v", got, err)
	}
	upd := emp.Clone()
	upd[3] = model.Str("female")
	if err := s.Update(tid, upd); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Read(tid)
	if got[3].(model.Str) != "female" {
		t.Error("update lost")
	}
	if err := s.Delete(tid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(tid); err == nil {
		t.Error("read after delete")
	}
	// Type enforcement.
	if _, err := s.Insert(model.Tuple{model.Int(1)}); err == nil {
		t.Error("short tuple accepted")
	}
	if _, err := s.Insert(model.Tuple{model.Str("x"), model.Str("a"), model.Str("b"), model.Str("c")}); err == nil {
		t.Error("mistyped tuple accepted")
	}
}

func TestScanAndAll(t *testing.T) {
	s := newFlat(t, false)
	for _, tup := range testdata.Employees().Tuples {
		if _, err := s.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := s.Scan(func(_ page.TID, _ model.Tuple) error { n++; return nil })
	if err != nil || n != 20 {
		t.Fatalf("scan = %d, %v", n, err)
	}
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if !model.TableEqual(all, testdata.Employees()) {
		t.Error("All() differs from inserted data")
	}
}

func TestVersionedFlat(t *testing.T) {
	s := newFlat(t, true)
	emp := testdata.Employees().Tuples[0]
	tid, _ := s.Insert(emp) // ts=1
	t1 := int64(1)
	upd := emp.Clone()
	upd[1] = model.Str("Renamed")
	s.Update(tid, upd) // ts=2
	old, ok, err := s.ReadAsOf(tid, t1)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if old[1].(model.Str) != "Kramer" {
		t.Errorf("ASOF name = %v", old[1])
	}
	cur, _ := s.Read(tid)
	if cur[1].(model.Str) != "Renamed" {
		t.Errorf("current name = %v", cur[1])
	}
}
