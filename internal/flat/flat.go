// Package flat stores tables in first normal form. Flat tables are
// the degenerate case of the extended NF² model: every tuple is
// completely stored in one data subtuple and there are no Mini
// Directories at all (§4.1: "a flat (1NF) table does not have Mini
// Directories for its objects"). This is also the substrate for the
// 1NF baseline (Tables 1-4) that the NF² representation is compared
// against, and for Lorie's "on top" complex objects.
package flat

import (
	"fmt"

	"repro/internal/dberr"
	"repro/internal/model"
	"repro/internal/page"
	"repro/internal/subtuple"
)

// TupleError reports a stored tuple that cannot be read back — the
// flat-table analogue of a broken complex object. It carries the TID
// so the engine can quarantine exactly that tuple, and wraps the
// underlying corruption error for errors.Is classification.
type TupleError struct {
	TID page.TID
	Err error
}

func (e *TupleError) Error() string { return fmt.Sprintf("flat: tuple %v: %v", e.TID, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TupleError) Unwrap() error { return e.Err }

// wrapCorrupt tags corruption errors with the tuple's TID; other
// errors pass through unchanged.
func wrapCorrupt(tid page.TID, err error) error {
	if err != nil && dberr.IsCorrupt(err) {
		return &TupleError{TID: tid, Err: err}
	}
	return err
}

// Store holds the tuples of one flat table in one subtuple store.
type Store struct {
	st *subtuple.Store
	tt *model.TableType
}

// New creates a flat store; tt must be in first normal form.
func New(st *subtuple.Store, tt *model.TableType) (*Store, error) {
	if !tt.Flat() {
		return nil, fmt.Errorf("flat: table type %s is not in first normal form", tt)
	}
	return &Store{st: st, tt: tt}, nil
}

// Type returns the table's type.
func (s *Store) Type() *model.TableType { return s.tt }

// Subtuples returns the underlying subtuple store.
func (s *Store) Subtuples() *subtuple.Store { return s.st }

// Insert stores a tuple and returns its TID.
func (s *Store) Insert(tup model.Tuple) (page.TID, error) {
	if err := model.Conform(s.tt, tup); err != nil {
		return page.TID{}, err
	}
	payload, err := model.EncodeAtoms(tup)
	if err != nil {
		return page.TID{}, err
	}
	return s.st.Insert(payload)
}

// Read returns the tuple stored at the TID.
func (s *Store) Read(tid page.TID) (model.Tuple, error) {
	raw, err := s.st.Read(tid)
	if err != nil {
		return nil, wrapCorrupt(tid, err)
	}
	tup, err := s.decode(raw)
	return tup, wrapCorrupt(tid, err)
}

// ReadAsOf returns the tuple as of the instant ts; the boolean
// reports whether it existed then.
func (s *Store) ReadAsOf(tid page.TID, ts int64) (model.Tuple, bool, error) {
	raw, ok, err := s.st.ReadAsOf(tid, ts)
	if err != nil || !ok {
		return nil, ok, wrapCorrupt(tid, err)
	}
	tup, err := s.decode(raw)
	return tup, true, wrapCorrupt(tid, err)
}

func (s *Store) decode(raw []byte) (model.Tuple, error) {
	vals, err := model.DecodeAtoms(raw)
	if err != nil {
		return nil, err
	}
	if len(vals) > len(s.tt.Attrs) {
		return nil, dberr.Corruptf("flat: stored tuple has %d values, schema %d", len(vals), len(s.tt.Attrs))
	}
	// Tuples written before an ALTER TABLE ADD read the new (last)
	// attributes as null.
	for len(vals) < len(s.tt.Attrs) {
		vals = append(vals, model.Null{})
	}
	return model.Tuple(vals), nil
}

// Update overwrites the tuple at the TID.
func (s *Store) Update(tid page.TID, tup model.Tuple) error {
	if err := model.Conform(s.tt, tup); err != nil {
		return err
	}
	payload, err := model.EncodeAtoms(tup)
	if err != nil {
		return err
	}
	return s.st.Update(tid, payload)
}

// Delete removes the tuple at the TID.
func (s *Store) Delete(tid page.TID) error { return s.st.Delete(tid) }

// Scan streams all tuples of the table.
func (s *Store) Scan(fn func(tid page.TID, tup model.Tuple) error) error {
	return s.st.Scan(func(tid page.TID, raw []byte) error {
		tup, err := s.decode(raw)
		if err != nil {
			return wrapCorrupt(tid, err)
		}
		return fn(tid, tup)
	})
}

// Cursor streams the table's tuples one Next at a time; pass asof 0
// for the current state, nonzero for the state at that instant. No
// buffer pages are held between calls.
type Cursor struct {
	s *Store
	c *subtuple.Cursor
}

// NewCursor opens a pull cursor over the table (asof 0 = current).
func (s *Store) NewCursor(asof int64) (*Cursor, error) {
	var c *subtuple.Cursor
	var err error
	if asof != 0 {
		c, err = s.st.NewAsOfCursor(asof)
	} else {
		c, err = s.st.NewCursor()
	}
	if err != nil {
		return nil, err
	}
	return &Cursor{s: s, c: c}, nil
}

// Next returns the next tuple; the boolean is false at end of scan.
func (c *Cursor) Next() (page.TID, model.Tuple, bool, error) {
	tid, raw, ok, err := c.c.Next()
	if err != nil || !ok {
		return page.TID{}, nil, false, err
	}
	tup, err := c.s.decode(raw)
	if err != nil {
		return page.TID{}, nil, false, wrapCorrupt(tid, err)
	}
	return tid, tup, true, nil
}

// Close releases the cursor (idempotent, never fails).
func (c *Cursor) Close() error { return c.c.Close() }

// All materializes the whole table.
func (s *Store) All() (*model.Table, error) {
	t := &model.Table{Ordered: s.tt.Ordered}
	err := s.Scan(func(_ page.TID, tup model.Tuple) error {
		t.Append(tup)
		return nil
	})
	return t, err
}
