package core

import (
	"strings"
	"testing"

	"repro/internal/object"
	"repro/internal/testdata"
)

// Every table and figure must regenerate without error and contain
// its load-bearing content.
func TestRunAll(t *testing.T) {
	wantSnippets := map[string][]string{
		"T1": {"DEPARTMENTS_1NF", "314", "320000"},
		"T2": {"PROJECTS_1NF", "CGA", "HEAP", "TEXT", "NEBS"},
		"T3": {"MEMBERS_1NF", "56019", "Consultant"},
		"T4": {"EQUIP_1NF", "3278", "PC/AT"},
		"T5": {"{ DEPARTMENTS }", "{ PROJECTS }", "{ MEMBERS }", "56194", "Consultant"},
		"T6": {"< AUTHORS >", "Jones", "Concurrency"},
		"T7": {"RESULT", "39582", "Leader"},
		"T8": {"EMPLOYEES_1NF", "Schmidt"},
		"F1": {"GU  DEPARTMENT(DNO=314)", "GNP", "one NF² query"},
		"F2": {"identical to the stored Table 5"},
		"F3": {"{ PROJECTS }"},
		"F4": {"EMPLOYEES", "Kramer"},
		"F5": {"Schmidt"},
		"F6": {"SS1=7 > SS3=5 > SS2=2", "structure/data separation"},
		"F7": {"HIERARCHICAL", "DATA", "ROOT"},
		"F8": {"U (department 314", "resolve(T)"},
	}
	// F6's exact counts: SS1=7, SS3=5, SS2=3.
	wantSnippets["F6"] = []string{"SS1=7 > SS3=5 > SS2=3", "structure/data separation"}
	for _, id := range AllIDs() {
		rep, err := Run(id)
		if err != nil {
			t.Fatalf("Run(%s): %v", id, err)
		}
		if rep.ID != id || rep.Title == "" || rep.Text == "" {
			t.Errorf("Run(%s) produced incomplete report", id)
		}
		for _, snip := range wantSnippets[id] {
			if !strings.Contains(rep.Text, snip) {
				t.Errorf("Run(%s) output missing %q:\n%s", id, snip, rep.Text)
			}
		}
	}
	if _, err := Run("T99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// The Fig 7 access-count ordering: hierarchical ≪ root ≪ data
// (full scan), with identical result counts.
func TestCompareIndexStrategiesShape(t *testing.T) {
	res, err := CompareIndexStrategies(testdata.GenConfig{
		Departments: 40, ProjsPerDept: 6, MembersPerProj: 10, EquipPerDept: 3,
		Seed: 11, ConsultantEvery: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]StrategyRow{}
	for _, r := range res.Rows {
		byName[r.Strategy] = r
		t.Logf("%-14s fetches=%6d results=%d", r.Strategy, r.Fetches, r.Results)
	}
	d, r, h := byName["DATA"], byName["ROOT"], byName["HIERARCHICAL"]
	if !(d.Results == r.Results && r.Results == h.Results) {
		t.Fatalf("strategies disagree on results: %v", res.Rows)
	}
	if h.Results == 0 {
		t.Fatal("no matching departments; workload too sparse")
	}
	if !(h.Fetches < r.Fetches && r.Fetches < d.Fetches) {
		t.Errorf("access counts not hier < root < data: hier=%d root=%d data=%d",
			h.Fetches, r.Fetches, d.Fetches)
	}
}

// The layout comparison orders MD subtuple counts SS1 > SS3 > SS2 at
// scale, with identical data bytes.
func TestCompareLayoutsShape(t *testing.T) {
	rows, err := CompareLayouts(testdata.GenConfig{
		Departments: 20, ProjsPerDept: 4, MembersPerProj: 8, EquipPerDept: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	by := map[object.Layout]LayoutRow{}
	for _, r := range rows {
		by[r.Layout] = r
		t.Logf("%s: md=%d mdBytes=%d ptrs=%d pages=%d build=%d read=%d nav=%d",
			r.Layout, r.MDSubtuples, r.MDBytes, r.Pointers, r.Pages,
			r.BuildFetches, r.ReadFetches, r.NavFetches)
	}
	if !(by[object.SS1].MDSubtuples > by[object.SS3].MDSubtuples &&
		by[object.SS3].MDSubtuples > by[object.SS2].MDSubtuples) {
		t.Errorf("MD subtuple counts not SS1 > SS3 > SS2")
	}
	if by[object.SS1].DataBytes != by[object.SS2].DataBytes ||
		by[object.SS2].DataBytes != by[object.SS3].DataBytes {
		t.Errorf("data bytes differ across layouts (should be invariant)")
	}
}

// Clustering: after interleaved growth, cold whole-object reads do
// fewer physical page reads under local address spaces than under
// Lorie's linked tuples.
func TestCompareClusteringShape(t *testing.T) {
	rows, err := CompareClustering(16, 5, 12, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-32s physical reads=%5d fetches=%6d pages=%d",
			r.System, r.PhysicalReads, r.Fetches, r.PagesTotal)
	}
	if !(rows[0].PhysicalReads < rows[1].PhysicalReads) {
		t.Errorf("clustered reads (%d) not below scattered reads (%d)",
			rows[0].PhysicalReads, rows[1].PhysicalReads)
	}
}

// Checkout traffic grows with pages, far slower than subtuples.
func TestMeasureCheckoutShape(t *testing.T) {
	rows, err := MeasureCheckout([]int{10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("members=%4d subtuples=%5d pages=%3d relocate fetches=%d",
			r.Members, r.Subtuples, r.Pages, r.RelocateFetches)
	}
	last := rows[len(rows)-1]
	if last.RelocateFetches > uint64(last.Subtuples) {
		t.Errorf("relocation touched %d (>= subtuple count %d); should be page-proportional",
			last.RelocateFetches, last.Subtuples)
	}
	// Page-proportional: a handful of fetches per page.
	if last.RelocateFetches > uint64(8*last.Pages+16) {
		t.Errorf("relocation fetches %d not O(pages=%d)", last.RelocateFetches, last.Pages)
	}
}

// ASOF: reading the oldest version walks the chain; the newest is a
// constant number of fetches.
func TestMeasureASOFShape(t *testing.T) {
	rows, err := MeasureASOF([]int{1, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("versions=%3d latest=%d oldest=%d", r.Versions, r.FetchesLatest, r.FetchesOldest)
	}
	if rows[2].FetchesOldest <= rows[0].FetchesOldest {
		t.Error("oldest-version cost did not grow with chain depth")
	}
	if rows[2].FetchesLatest > 4 {
		t.Errorf("latest-version read cost %d; should be constant", rows[2].FetchesLatest)
	}
}
