package core

import (
	"repro/internal/engine"
	"repro/internal/testdata"
)

// ExampleQuery is one of the paper's worked examples (§3) as a
// self-contained read-only statement against the office database.
type ExampleQuery struct {
	ID   string // "E1".."E8", paper numbering
	Text string
}

// ExampleQueries returns the read workload shared by the concurrency
// stress tests and aimbench's throughput mode: Examples 1-8 of the
// paper, from the cheap full-table retrieval (E1) to restructuring
// (E3), unnesting (E4), quantifiers (E5, E6), cross-level joins (E7)
// and list indexing (E8). All are pure reads, so any interleaving of
// them against a quiescent office database must produce the serial
// results.
func ExampleQueries() []ExampleQuery {
	return []ExampleQuery{
		{"E1", `SELECT * FROM x IN DEPARTMENTS`},
		{"E2", `
SELECT x.DNO, x.MGRNO,
       PROJECTS = (SELECT y.PNO, y.PNAME,
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS)
                   FROM y IN x.PROJECTS),
       x.BUDGET,
       EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
FROM x IN DEPARTMENTS`},
		{"E3", `
SELECT x.DNO, x.MGRNO,
       PROJECTS = (SELECT y.PNO, y.PNAME,
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION
                                     FROM z IN MEMBERS_1NF
                                     WHERE z.PNO = y.PNO AND z.DNO = y.DNO)
                   FROM y IN PROJECTS_1NF
                   WHERE y.DNO = x.DNO),
       x.BUDGET,
       EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP_1NF WHERE v.DNO = x.DNO)
FROM x IN DEPARTMENTS_1NF`},
		{"E4", `
SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS`},
		{"E5", `
SELECT x.DNO, x.MGRNO, x.BUDGET
FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'`},
		{"E6", `
SELECT x.DNO, x.MGRNO, x.BUDGET
FROM x IN DEPARTMENTS
WHERE ALL y IN x.PROJECTS ALL z IN y.MEMBERS: z.FUNCTION = 'Consultant'`},
		{"E7", `
SELECT x.DNO, x.MGRNO,
       EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                    FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES_1NF
                    WHERE u.EMPNO = z.EMPNO)
FROM x IN DEPARTMENTS`},
		{"E8", `
SELECT x.AUTHORS, x.TITLE
FROM x IN REPORTS
WHERE x.AUTHORS[1].NAME = 'Jones'`},
	}
}

// BenchQueries is the subset of ExampleQueries that stays linear in
// the data it touches, for running against a generated DEPARTMENTS
// table much larger than the buffer pool. Example 7 is excluded: its
// unindexed cross-level join rescans EMPLOYEES_1NF once per member,
// so at benchmark scale it measures join CPU, not the read path.
// Examples 3 and 8 run against the fixture-sized 1NF and REPORTS
// tables and contribute cache-hit traffic to the mix.
func BenchQueries() []ExampleQuery {
	var out []ExampleQuery
	for _, q := range ExampleQueries() {
		if q.ID != "E7" {
			out = append(out, q)
		}
	}
	return out
}

// BenchOffice opens a database with the office schema at benchmark
// scale: DEPARTMENTS is generated from cfg (Table 5's shape scaled
// up), while REPORTS, the 1NF decomposition and EMPLOYEES_1NF stay
// the paper's fixtures. aimbench's throughput mode uses it with a
// pool far smaller than the generated table so queries keep faulting
// pages in.
func BenchOffice(cfg testdata.GenConfig, opts engine.Options) (*engine.DB, error) {
	if opts.Clock == nil {
		ts := int64(0)
		opts.Clock = func() int64 { ts++; return ts }
	}
	db, err := engine.Open(opts)
	if err != nil {
		return nil, err
	}
	loads := []tableLoad{
		{"DEPARTMENTS", testdata.DepartmentsType(), testdata.GenDepartments(cfg), engine.TableOptions{}},
		{"REPORTS", testdata.ReportsType(), testdata.Reports(), engine.TableOptions{}},
		{"DEPARTMENTS_1NF", testdata.DepartmentsFlatType(), testdata.DepartmentsFlat(), engine.TableOptions{}},
		{"PROJECTS_1NF", testdata.ProjectsFlatType(), testdata.ProjectsFlat(), engine.TableOptions{}},
		{"MEMBERS_1NF", testdata.MembersFlatType(), testdata.MembersFlat(), engine.TableOptions{}},
		{"EQUIP_1NF", testdata.EquipFlatType(), testdata.EquipFlat(), engine.TableOptions{}},
		{"EMPLOYEES_1NF", testdata.EmployeesType(), testdata.Employees(), engine.TableOptions{}},
	}
	if err := loadTables(db, loads); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// OfficeWith is OfficeAt with full control over the engine options:
// the office fixtures are loaded into a database opened with opts.
// A deterministic logical clock is installed unless the caller set
// one. The concurrency tests and aimbench use it to force small,
// sharded buffer pools.
func OfficeWith(opts engine.Options) (*engine.DB, error) {
	if opts.Clock == nil {
		ts := int64(0)
		opts.Clock = func() int64 { ts++; return ts }
	}
	db, err := engine.Open(opts)
	if err != nil {
		return nil, err
	}
	if err := loadOffice(db); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}
