package core

import (
	"fmt"
	"math/rand"

	"repro/internal/buffer"
	"repro/internal/index"
	"repro/internal/lorie"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/subtuple"
	"repro/internal/testdata"
)

// newObjectWorld builds an isolated pool + subtuple store + manager.
func newObjectWorld(poolPages int, layout object.Layout) (*buffer.Pool, *subtuple.Store, *object.Manager) {
	pool := buffer.NewPool(poolPages)
	pool.Register(1, segment.NewMemStore())
	st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
	return pool, st, object.NewManager(st, layout)
}

// --- experiment: index address strategies (Fig 7) -----------------------

// StrategyRow is one row of the Fig 7 experiment.
type StrategyRow struct {
	Strategy string
	Fetches  uint64 // logical subtuple/page fetches during evaluation
	Results  int
}

// StrategyResult is the outcome of CompareIndexStrategies.
type StrategyResult struct {
	TargetPNO int64
	Rows      []StrategyRow
}

// CompareIndexStrategies evaluates the paper's conjunctive query
// "departments having a project PNO = P with a Consultant" under the
// three index address implementations of §4.2, counting buffer
// fetches. Project numbers repeat across departments (as the paper
// allows), so the PNO index alone returns a superset.
func CompareIndexStrategies(cfg testdata.GenConfig) (StrategyResult, error) {
	if cfg.ProjectNoRange == 0 {
		cfg.ProjectNoRange = cfg.ProjsPerDept * 3
	}
	data := testdata.GenDepartments(cfg)
	tt := testdata.DepartmentsType()
	pool, _, m := newObjectWorld(1<<16, object.SS3)
	var refs []object.Ref
	for _, tup := range data.Tuples {
		ref, err := m.Insert(tt, tup)
		if err != nil {
			return StrategyResult{}, err
		}
		refs = append(refs, ref)
	}
	// Pick the first project number that has a consultant somewhere.
	targetPNO := int64(-1)
	hasConsultant := func(proj model.Tuple) bool {
		for _, z := range proj[2].(*model.Table).Tuples {
			if z[1].(model.Str) == "Consultant" {
				return true
			}
		}
		return false
	}
	for _, d := range data.Tuples {
		for _, p := range d[2].(*model.Table).Tuples {
			if hasConsultant(p) {
				targetPNO = int64(p[0].(model.Int))
				break
			}
		}
		if targetPNO >= 0 {
			break
		}
	}
	matches := func(d model.Tuple) bool {
		for _, p := range d[2].(*model.Table).Tuples {
			if int64(p[0].(model.Int)) == targetPNO && hasConsultant(p) {
				return true
			}
		}
		return false
	}

	res := StrategyResult{TargetPNO: targetPNO}
	for _, kind := range []index.Kind{index.DataTID, index.RootTID, index.Hierarchical} {
		pnoIx, err := index.New(index.Def{Name: "pno", Path: []string{"PROJECTS", "PNO"}, Kind: kind}, tt)
		if err != nil {
			return res, err
		}
		fnIx, err := index.New(index.Def{Name: "fn", Path: []string{"PROJECTS", "MEMBERS", "FUNCTION"}, Kind: kind}, tt)
		if err != nil {
			return res, err
		}
		for _, ref := range refs {
			if err := pnoIx.AddObject(m, tt, ref); err != nil {
				return res, err
			}
			if err := fnIx.AddObject(m, tt, ref); err != nil {
				return res, err
			}
		}
		pool.ResetStats()
		results := 0
		switch kind {
		case index.DataTID:
			// §4.2 first approach: the data-subtuple TIDs returned by
			// the indexes cannot locate the containing complex objects
			// ("there is no structural information about the MD tree
			// in the data subtuples"), so the query falls back to a
			// full scan of the table.
			for _, ref := range refs {
				tup, err := m.Read(tt, ref)
				if err != nil {
					return res, err
				}
				if matches(tup) {
					results++
				}
			}
		case index.RootTID:
			// §4.2 second approach: intersect the distinct candidate
			// objects of both indexes, then scan inside each candidate
			// to check whether the consultant works in project P.
			pAddrs, _ := pnoIx.Lookup(model.Int(targetPNO))
			fAddrs, _ := fnIx.Lookup(model.Str("Consultant"))
			fRoots := map[page.TID]bool{}
			for _, a := range fAddrs {
				fRoots[a.TID] = true
			}
			for _, root := range index.DistinctRoots(pAddrs) {
				if !fRoots[root] {
					continue
				}
				tup, err := m.Read(tt, root)
				if err != nil {
					return res, err
				}
				if matches(tup) {
					results++
				}
			}
		case index.Hierarchical:
			// Fig 7b: the shared path prefix (P2 = F2) identifies the
			// common project; only the hit departments' data subtuples
			// are touched, no scan at all.
			pAddrs, _ := pnoIx.Lookup(model.Int(targetPNO))
			fAddrs, _ := fnIx.Lookup(model.Str("Consultant"))
			pairs := index.IntersectByPrefix(pAddrs, fAddrs, 1)
			seen := map[page.TID]bool{}
			for _, pr := range pairs {
				if seen[pr[0].TID] {
					continue
				}
				seen[pr[0].TID] = true
				// Retrieve DNO directly: one data-subtuple access via
				// the object's own data path.
				if _, err := m.ReadAtomsAt(tt, pr[0].TID); err != nil {
					return res, err
				}
				results++
			}
		}
		res.Rows = append(res.Rows, StrategyRow{
			Strategy: kind.String(),
			Fetches:  pool.Stats().Fetches,
			Results:  results,
		})
	}
	return res, nil
}

// --- experiment: storage structure comparison (Fig 6 at scale) ----------

// LayoutRow is one row of the SS1/SS2/SS3 comparison.
type LayoutRow struct {
	Layout        object.Layout
	MDSubtuples   int
	MDBytes       int
	DataBytes     int
	Pointers      int
	Pages         int
	BuildFetches  uint64
	ReadFetches   uint64 // whole-object reads over the table
	NavFetches    uint64 // partial retrieval: atoms of one member per object
	CheckoutPages int    // pages copied by a page-level relocation
}

// CompareLayouts builds the same generated DEPARTMENTS workload under
// SS1, SS2 and SS3 and measures MD size, buffer traffic for builds,
// whole-object reads and partial navigation — the criteria of §4.1
// and /DGW85/.
func CompareLayouts(cfg testdata.GenConfig) ([]LayoutRow, error) {
	data := testdata.GenDepartments(cfg)
	tt := testdata.DepartmentsType()
	var rows []LayoutRow
	for _, layout := range []object.Layout{object.SS1, object.SS2, object.SS3} {
		pool, _, m := newObjectWorld(1<<16, layout)
		pool.ResetStats()
		var refs []object.Ref
		for _, tup := range data.Tuples {
			ref, err := m.Insert(tt, tup)
			if err != nil {
				return nil, err
			}
			refs = append(refs, ref)
		}
		row := LayoutRow{Layout: layout, BuildFetches: pool.Stats().Fetches}
		for _, ref := range refs {
			s, err := m.ObjectStats(tt, ref)
			if err != nil {
				return nil, err
			}
			row.MDSubtuples += s.MDSubtuples
			row.MDBytes += s.MDBytes
			row.DataBytes += s.DataBytes
			row.Pointers += s.Pointers
			row.Pages += s.Pages
		}
		pool.ResetStats()
		for _, ref := range refs {
			if _, err := m.Read(tt, ref); err != nil {
				return nil, err
			}
		}
		row.ReadFetches = pool.Stats().Fetches
		pool.ResetStats()
		for _, ref := range refs {
			// Partial retrieval: atoms of the second member of the
			// first project, touching only structural information on
			// the way (§4.1's navigation demand).
			if _, err := m.ReadAtomsAt(tt, ref, object.Step{Attr: 2, Pos: 0}, object.Step{Attr: 2, Pos: 1}); err != nil {
				return nil, err
			}
		}
		row.NavFetches = pool.Stats().Fetches
		snap, err := m.Export(refs[0])
		if err != nil {
			return nil, err
		}
		row.CheckoutPages = len(snap.Pages)
		rows = append(rows, row)
	}
	return rows, nil
}

// --- experiment: clustering vs "on top" (Lorie) -------------------------

// ClusteringRow is one side of the clustering experiment.
type ClusteringRow struct {
	System        string
	PhysicalReads uint64 // cold reads of every object after growth
	Fetches       uint64
	PagesTotal    uint32
}

// CompareClustering grows complex objects incrementally under (a) the
// AIM-II object manager with local address spaces and (b) Lorie's
// linked flat tuples, then cold-reads every object and counts
// physical page reads. Interleaved growth scatters the "on top"
// objects across shared pages while the local address spaces keep
// each object's subtuples together (§4.1's clustering demand).
func CompareClustering(departments, projects, initialMembers, growthRounds int, seed int64) ([]ClusteringRow, error) {
	cfg := testdata.GenConfig{
		Departments: departments, ProjsPerDept: projects,
		MembersPerProj: initialMembers, EquipPerDept: 2, Seed: seed,
	}
	data := testdata.GenDepartments(cfg)
	tt := testdata.DepartmentsType()
	rng := rand.New(rand.NewSource(seed))
	empno := int64(900000)

	var rows []ClusteringRow

	// (a) AIM-II object manager.
	{
		pool, _, m := newObjectWorld(1<<16, object.SS3)
		var refs []object.Ref
		for _, tup := range data.Tuples {
			ref, err := m.Insert(tt, tup)
			if err != nil {
				return nil, err
			}
			refs = append(refs, ref)
		}
		for r := 0; r < growthRounds; r++ {
			for _, ref := range refs {
				proj := rng.Intn(projects)
				member := model.Tuple{model.Int(empno), model.Str("Staff")}
				empno++
				if err := m.InsertMember(tt, ref, []object.Step{{Attr: 2, Pos: proj}}, 2, -1, member); err != nil {
					return nil, err
				}
			}
		}
		if err := pool.FlushAll(); err != nil {
			return nil, err
		}
		// Cold-read every object: invalidate the pool between objects
		// so each read counts the distinct pages the object spans.
		pool.ResetStats()
		for _, ref := range refs {
			pool.InvalidateAll()
			if _, err := m.Read(tt, ref); err != nil {
				return nil, err
			}
		}
		st := pool.Stats()
		rows = append(rows, ClusteringRow{
			System: "AIM-II (local address spaces)", PhysicalReads: st.Reads,
			Fetches: st.Fetches, PagesTotal: pool.Store(1).PageCount(),
		})
	}

	// (b) Lorie linked tuples over the flat layer.
	{
		pool := buffer.NewPool(1 << 16)
		pool.Register(1, segment.NewMemStore())
		st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
		ls := lorie.New(st, tt)
		rng := rand.New(rand.NewSource(seed))
		empno := int64(900000)
		var roots []page.TID
		for _, tup := range data.Tuples {
			root, err := ls.Insert(tup)
			if err != nil {
				return nil, err
			}
			roots = append(roots, root)
		}
		for r := 0; r < growthRounds; r++ {
			for _, root := range roots {
				proj := rng.Intn(projects)
				member := model.Tuple{model.Int(empno), model.Str("Staff")}
				empno++
				if err := ls.AppendMember(root, []int{2, 2}, []int{proj}, member); err != nil {
					return nil, err
				}
			}
		}
		if err := pool.FlushAll(); err != nil {
			return nil, err
		}
		pool.ResetStats()
		for _, root := range roots {
			pool.InvalidateAll()
			if _, err := ls.Read(root); err != nil {
				return nil, err
			}
		}
		s := pool.Stats()
		rows = append(rows, ClusteringRow{
			System: "Lorie linked tuples (on top)", PhysicalReads: s.Reads,
			Fetches: s.Fetches, PagesTotal: pool.Store(1).PageCount(),
		})
	}
	return rows, nil
}

// --- experiment: page-level checkout (§4.1) ------------------------------

// CheckoutRow measures one object size in the checkout experiment.
type CheckoutRow struct {
	Members         int
	Subtuples       int
	Pages           int
	RelocateFetches uint64
}

// MeasureCheckout relocates objects of increasing size and reports
// the buffer traffic: proportional to the page count, not the
// subtuple count, because Mini TIDs survive page-level moves.
func MeasureCheckout(memberCounts []int) ([]CheckoutRow, error) {
	tt := testdata.DepartmentsType()
	var rows []CheckoutRow
	for _, n := range memberCounts {
		cfg := testdata.GenConfig{Departments: 1, ProjsPerDept: 1, MembersPerProj: n, EquipPerDept: 1, Seed: int64(n)}
		data := testdata.GenDepartments(cfg)
		pool, _, m := newObjectWorld(1<<16, object.SS3)
		ref, err := m.Insert(tt, data.Tuples[0])
		if err != nil {
			return nil, err
		}
		stats, err := m.ObjectStats(tt, ref)
		if err != nil {
			return nil, err
		}
		pool.ResetStats()
		if _, err := m.Relocate(ref); err != nil {
			return nil, err
		}
		rows = append(rows, CheckoutRow{
			Members:         n,
			Subtuples:       stats.MDSubtuples + stats.DataSubtuples,
			Pages:           stats.Pages,
			RelocateFetches: pool.Stats().Fetches,
		})
	}
	return rows, nil
}

// --- experiment: ASOF cost vs version-chain depth ------------------------

// ASOFRow measures one version depth.
type ASOFRow struct {
	Versions      int
	FetchesLatest uint64
	FetchesOldest uint64
}

// MeasureASOF updates one subtuple repeatedly and compares the cost
// of reading the newest versus the oldest state — the version chain
// walk of the subtuple manager (§5).
func MeasureASOF(depths []int) ([]ASOFRow, error) {
	var rows []ASOFRow
	for _, d := range depths {
		pool := buffer.NewPool(1 << 16)
		pool.Register(1, segment.NewMemStore())
		ts := int64(0)
		st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1, Versioned: true, Clock: func() int64 { ts++; return ts }})
		tid, err := st.Insert([]byte("v0"))
		if err != nil {
			return nil, err
		}
		for i := 1; i <= d; i++ {
			if err := st.Update(tid, []byte(fmt.Sprintf("v%d", i))); err != nil {
				return nil, err
			}
		}
		pool.ResetStats()
		if _, _, err := st.ReadAsOf(tid, ts); err != nil {
			return nil, err
		}
		latest := pool.Stats().Fetches
		pool.ResetStats()
		if _, _, err := st.ReadAsOf(tid, 1); err != nil {
			return nil, err
		}
		oldest := pool.Stats().Fetches
		rows = append(rows, ASOFRow{Versions: d + 1, FetchesLatest: latest, FetchesOldest: oldest})
	}
	return rows, nil
}
