// Package core is the reproduction layer of this repository: it wires
// the AIM-II engine to the paper's worked examples and regenerates
// every table (T1-T8) and figure (F1-F8) of Dadam et al., SIGMOD
// 1986, plus the quantitative experiments behind the paper's
// qualitative storage and addressing claims (§4). The aimbench
// binary, the test suite and the benchmarks all run through this
// package, so the reproduced artifacts are asserted, printable and
// measurable from one place.
package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/testdata"
)

// Report is the outcome of reproducing one table or figure.
type Report struct {
	ID    string
	Title string
	Text  string
}

// Office opens an in-memory database loaded with the paper's office
// fixtures: DEPARTMENTS (Table 5, versioned), REPORTS (Table 6), the
// 1NF decomposition (Tables 1-4) and EMPLOYEES_1NF (Table 8). The
// database clock is a logical tick counter so ASOF experiments are
// deterministic.
func Office() (*engine.DB, error) { return OfficeAt("") }

// OfficeAt is Office with an on-disk home: dir == "" opens the usual
// in-memory database, otherwise the database (pages and WAL) lives
// under dir and survives Close — the artifact aimbench leaves behind
// for post-run inspection with aimdoctor.
func OfficeAt(dir string) (*engine.DB, error) {
	return OfficeWith(engine.Options{Dir: dir})
}

// tableLoad is one table to create and fill when seeding a database.
type tableLoad struct {
	name string
	tt   *model.TableType
	data *model.Table
	opts engine.TableOptions
}

// loadOffice creates and fills the office tables in an open database.
func loadOffice(db *engine.DB) error {
	loads := []tableLoad{
		{"DEPARTMENTS", testdata.DepartmentsType(), testdata.Departments(), engine.TableOptions{Versioned: true}},
		{"REPORTS", testdata.ReportsType(), testdata.Reports(), engine.TableOptions{}},
		{"DEPARTMENTS_1NF", testdata.DepartmentsFlatType(), testdata.DepartmentsFlat(), engine.TableOptions{}},
		{"PROJECTS_1NF", testdata.ProjectsFlatType(), testdata.ProjectsFlat(), engine.TableOptions{}},
		{"MEMBERS_1NF", testdata.MembersFlatType(), testdata.MembersFlat(), engine.TableOptions{}},
		{"EQUIP_1NF", testdata.EquipFlatType(), testdata.EquipFlat(), engine.TableOptions{}},
		{"EMPLOYEES_1NF", testdata.EmployeesType(), testdata.Employees(), engine.TableOptions{}},
	}
	return loadTables(db, loads)
}

func loadTables(db *engine.DB, loads []tableLoad) error {
	for _, l := range loads {
		if err := db.CreateTable(l.name, l.tt, l.opts); err != nil {
			return err
		}
		for _, tup := range l.data.Tuples {
			if err := db.Insert(l.name, tup); err != nil {
				return fmt.Errorf("core: loading %s: %w", l.name, err)
			}
		}
	}
	return nil
}

// Run reproduces one experiment by id (T1..T8, F1..F8) against a
// fresh office database.
func Run(id string) (Report, error) {
	db, err := Office()
	if err != nil {
		return Report{}, err
	}
	defer db.Close()
	switch id {
	case "T1":
		return storedTable(db, id, "Table 1: DEPARTMENTS-1NF", "DEPARTMENTS_1NF")
	case "T2":
		return storedTable(db, id, "Table 2: PROJECTS-1NF", "PROJECTS_1NF")
	case "T3":
		return storedTable(db, id, "Table 3: MEMBERS-1NF", "MEMBERS_1NF")
	case "T4":
		return storedTable(db, id, "Table 4: EQUIP-1NF", "EQUIP_1NF")
	case "T5":
		return storedTable(db, id, "Table 5: the NF² DEPARTMENTS table", "DEPARTMENTS")
	case "T6":
		return storedTable(db, id, "Table 6: REPORTS with an ordered AUTHORS subtable", "REPORTS")
	case "T7":
		return tableT7(db)
	case "T8":
		return storedTable(db, id, "Table 8: EMPLOYEES-1NF", "EMPLOYEES_1NF")
	case "F1":
		return figureF1()
	case "F2":
		return figureF2(db)
	case "F3":
		return figureF3(db)
	case "F4":
		return figureF4(db)
	case "F5":
		return figureF5(db)
	case "F6":
		return figureF6()
	case "F7":
		return figureF7()
	case "F8":
		return figureF8()
	default:
		return Report{}, fmt.Errorf("core: unknown experiment %q (T1..T8, F1..F8)", id)
	}
}

// AllIDs lists every reproducible artifact in paper order.
func AllIDs() []string {
	return []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
		"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8"}
}

func storedTable(db *engine.DB, id, title, table string) (Report, error) {
	tbl, tt, err := db.Query(fmt.Sprintf("SELECT * FROM x IN %s", table))
	if err != nil {
		return Report{}, err
	}
	return Report{ID: id, Title: title, Text: model.FormatTable(table, tt, tbl)}, nil
}

// tableT7 regenerates Table 7: the unnest of Table 5 (§3 Example 4).
func tableT7(db *engine.DB) (Report, error) {
	tbl, tt, err := db.Query(`
SELECT x.DNO, x.MGRNO, y.PNO, y.PNAME, z.EMPNO, z.FUNCTION
FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS`)
	if err != nil {
		return Report{}, err
	}
	if !model.TableEqual(tbl, testdata.Unnested()) {
		return Report{}, fmt.Errorf("core: T7 result does not match the derived Table 7")
	}
	return Report{
		ID:    "T7",
		Title: "Table 7: result of Example 4 (unnest with projection)",
		Text:  model.FormatTable("RESULT", tt, tbl),
	}, nil
}
