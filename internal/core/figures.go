package core

import (
	"fmt"
	"strings"

	"repro/internal/buffer"
	"repro/internal/engine"
	"repro/internal/ims"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/segment"
	"repro/internal/subtuple"
	"repro/internal/testdata"
	"repro/internal/tname"
)

// figureF1 reproduces Fig 1: the DEPARTMENTS hierarchy in an IMS-like
// representation, retrieved with GU/GN/GNP navigation — contrasted
// with the single NF² query that replaces the navigation loop.
func figureF1() (Report, error) {
	member := &ims.SegmentType{Name: "MEMBER", Fields: []string{"EMPNO", "FUNCTION"}}
	project := &ims.SegmentType{Name: "PROJECT", Fields: []string{"PNO", "PNAME"}, Children: []*ims.SegmentType{member}}
	budget := &ims.SegmentType{Name: "BUDGET", Fields: []string{"AMOUNT"}}
	equip := &ims.SegmentType{Name: "EQUIP", Fields: []string{"QU", "TYPE"}}
	dept := &ims.SegmentType{Name: "DEPARTMENT", Fields: []string{"DNO", "MGRNO"}, Children: []*ims.SegmentType{project, budget, equip}}
	db := ims.New(dept)
	for _, d := range testdata.Departments().Tuples {
		dp, err := db.Insert(dept, -1, d[0], d[1])
		if err != nil {
			return Report{}, err
		}
		for _, p := range d[2].(*model.Table).Tuples {
			pp, err := db.Insert(project, dp, p[0], p[1])
			if err != nil {
				return Report{}, err
			}
			for _, m := range p[2].(*model.Table).Tuples {
				if _, err := db.Insert(member, pp, m[0], m[1]); err != nil {
					return Report{}, err
				}
			}
		}
		if _, err := db.Insert(budget, dp, d[3]); err != nil {
			return Report{}, err
		}
		for _, e := range d[4].(*model.Table).Tuples {
			if _, err := db.Insert(equip, dp, e[0], e[1]); err != nil {
				return Report{}, err
			}
		}
	}
	var b strings.Builder
	b.WriteString("Fig 1 segment hierarchy (IMS-like representation):\n")
	b.WriteString("  DEPARTMENT (DNO, MGRNO)\n")
	b.WriteString("  ├── PROJECT (PNO, PNAME)\n")
	b.WriteString("  │   └── MEMBER (EMPNO, FUNCTION)\n")
	b.WriteString("  ├── BUDGET (AMOUNT)\n")
	b.WriteString("  └── EQUIP (QU, TYPE)\n\n")
	fmt.Fprintf(&b, "%d segment occurrences stored in hierarchic sequence (HSAM).\n\n", db.Len())
	b.WriteString("Navigational retrieval of department 314 (GU + GNP loop):\n")
	if _, err := db.GU(ims.Qual{Segment: "DEPARTMENT", Field: "DNO", Value: model.Int(314)}); err != nil {
		return Report{}, err
	}
	b.WriteString("  GU  DEPARTMENT(DNO=314)\n")
	calls := 1
	for {
		seg, err := db.GNP()
		if err != nil {
			break
		}
		calls++
		parts := make([]string, len(seg.Values))
		for i, v := range seg.Values {
			parts[i] = v.String()
		}
		fmt.Fprintf(&b, "  GNP -> %-10s %s\n", seg.Type.Name, strings.Join(parts, " "))
	}
	fmt.Fprintf(&b, "=> %d DL/I calls for one department, versus one NF² query:\n", calls)
	b.WriteString("   SELECT * FROM x IN DEPARTMENTS WHERE x.DNO = 314\n")
	return Report{ID: "F1", Title: "Fig 1: DEPARTMENTS hierarchy in IMS-like representation", Text: b.String()}, nil
}

// figureF2 runs the Fig 2 query: explicit result structure; the
// result equals the stored Table 5.
func figureF2(db *engine.DB) (Report, error) {
	q := `
SELECT x.DNO, x.MGRNO,
       PROJECTS = (SELECT y.PNO, y.PNAME,
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION FROM z IN y.MEMBERS)
                   FROM y IN x.PROJECTS),
       x.BUDGET,
       EQUIP = (SELECT v.QU, v.TYPE FROM v IN x.EQUIP)
FROM x IN DEPARTMENTS`
	tbl, tt, err := db.Query(q)
	if err != nil {
		return Report{}, err
	}
	if !model.TableEqual(tbl, testdata.Departments()) {
		return Report{}, fmt.Errorf("core: F2 result differs from Table 5")
	}
	return Report{ID: "F2", Title: "Fig 2: query with explicitly defined (nested) result structure",
		Text: q + "\n\n" + model.FormatTable("RESULT", tt, tbl) + "\n=> identical to the stored Table 5.\n"}, nil
}

// figureF3 runs the Fig 3 query: the NEST operation building Table 5
// from the flat Tables 1-4.
func figureF3(db *engine.DB) (Report, error) {
	q := `
SELECT x.DNO, x.MGRNO,
       PROJECTS = (SELECT y.PNO, y.PNAME,
                          MEMBERS = (SELECT z.EMPNO, z.FUNCTION
                                     FROM z IN MEMBERS_1NF
                                     WHERE z.PNO = y.PNO AND z.DNO = y.DNO)
                   FROM y IN PROJECTS_1NF
                   WHERE y.DNO = x.DNO),
       x.BUDGET,
       EQUIP = (SELECT v.QU, v.TYPE FROM v IN EQUIP_1NF WHERE v.DNO = x.DNO)
FROM x IN DEPARTMENTS_1NF`
	tbl, tt, err := db.Query(q)
	if err != nil {
		return Report{}, err
	}
	if !model.TableEqual(tbl, testdata.Departments()) {
		return Report{}, fmt.Errorf("core: F3 nest differs from Table 5")
	}
	return Report{ID: "F3", Title: "Fig 3: constructing Table 5 from Tables 1-4 (nest operation)",
		Text: q + "\n\n" + model.FormatTable("RESULT", tt, tbl)}, nil
}

// figureF4 runs the Fig 4 query: join between MEMBERS (inside
// DEPARTMENTS) and the flat EMPLOYEES_1NF — "join attributes need not
// be on the same level in the hierarchy".
func figureF4(db *engine.DB) (Report, error) {
	q := `
SELECT x.DNO, x.MGRNO,
       EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                    FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES_1NF
                    WHERE u.EMPNO = z.EMPNO)
FROM x IN DEPARTMENTS`
	tbl, tt, err := db.Query(q)
	if err != nil {
		return Report{}, err
	}
	return Report{ID: "F4", Title: "Fig 4: join between MEMBERS (in DEPARTMENTS) and EMPLOYEES-1NF",
		Text: q + "\n\n" + model.FormatTable("RESULT", tt, tbl)}, nil
}

// figureF5 runs the Fig 5 query: two join conditions, retrieving the
// manager's name and sex instead of MGRNO.
func figureF5(db *engine.DB) (Report, error) {
	q := `
SELECT x.DNO, m.LNAME, m.FNAME, m.SEX,
       EMPLOYEES = (SELECT z.EMPNO, u.LNAME, u.FNAME, u.SEX, z.FUNCTION
                    FROM y IN x.PROJECTS, z IN y.MEMBERS, u IN EMPLOYEES_1NF
                    WHERE u.EMPNO = z.EMPNO)
FROM x IN DEPARTMENTS, m IN EMPLOYEES_1NF
WHERE m.EMPNO = x.MGRNO`
	tbl, tt, err := db.Query(q)
	if err != nil {
		return Report{}, err
	}
	return Report{ID: "F5", Title: "Fig 5: query with two joins (manager name and sex)",
		Text: q + "\n\n" + model.FormatTable("RESULT", tt, tbl)}, nil
}

// figureF6 reproduces Fig 6: the Mini Directory trees of department
// 314 under the three storage structures SS1, SS2 and SS3, with the
// MD subtuple counts the paper argues about (SS1 > SS3 > SS2).
func figureF6() (Report, error) {
	var b strings.Builder
	tt := testdata.DepartmentsType()
	counts := map[object.Layout]object.Stats{}
	for _, layout := range []object.Layout{object.SS1, object.SS2, object.SS3} {
		pool := buffer.NewPool(256)
		pool.Register(1, segment.NewMemStore())
		st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
		m := object.NewManager(st, layout)
		ref, err := m.Insert(tt, testdata.Departments().Tuples[0])
		if err != nil {
			return Report{}, err
		}
		dump, err := m.DumpMD(tt, ref)
		if err != nil {
			return Report{}, err
		}
		stats, err := m.ObjectStats(tt, ref)
		if err != nil {
			return Report{}, err
		}
		counts[layout] = stats
		fmt.Fprintf(&b, "--- Fig 6%c: storage structure %s ---\n", 'a'+byte(layout-1), layout)
		b.WriteString(dump)
		fmt.Fprintf(&b, "MD subtuples: %d   data subtuples: %d   pointers: %d   MD bytes: %d\n\n",
			stats.MDSubtuples, stats.DataSubtuples, stats.Pointers, stats.MDBytes)
	}
	s1, s2, s3 := counts[object.SS1], counts[object.SS2], counts[object.SS3]
	if !(s1.MDSubtuples > s3.MDSubtuples && s3.MDSubtuples > s2.MDSubtuples) {
		return Report{}, fmt.Errorf("core: MD subtuple order violated: SS1=%d SS3=%d SS2=%d",
			s1.MDSubtuples, s3.MDSubtuples, s2.MDSubtuples)
	}
	fmt.Fprintf(&b, "=> #MD subtuples: SS1=%d > SS3=%d > SS2=%d (the paper's ordering, §4.1)\n",
		s1.MDSubtuples, s3.MDSubtuples, s2.MDSubtuples)
	fmt.Fprintf(&b, "=> data subtuples identical across layouts (%d): structure/data separation\n", s1.DataSubtuples)
	return Report{ID: "F6", Title: "Fig 6: storage structures SS1/SS2/SS3 for department 314", Text: b.String()}, nil
}

// figureF7 reproduces Fig 7: the conjunctive query PNO = 17 AND
// FUNCTION = 'Consultant' under the three index address strategies,
// counting subtuple accesses. Hierarchical addresses (Fig 7b) answer
// it from the index information alone.
func figureF7() (Report, error) {
	res, err := CompareIndexStrategies(testdata.GenConfig{
		Departments: 50, ProjsPerDept: 8, MembersPerProj: 12, EquipPerDept: 4,
		Seed: 7, ConsultantEvery: 9,
	})
	if err != nil {
		return Report{}, err
	}
	var b strings.Builder
	b.WriteString("Conjunctive query: departments having a project with PNO = P that employs a Consultant\n")
	fmt.Fprintf(&b, "Workload: %d departments × %d projects × %d members\n\n", 50, 8, 12)
	fmt.Fprintf(&b, "%-28s %16s %14s\n", "address strategy (§4.2)", "subtuple fetches", "result size")
	for _, row := range res.Rows {
		fmt.Fprintf(&b, "%-28s %16d %14d\n", row.Strategy, row.Fetches, row.Results)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "=> DATA-TID addresses cannot locate the containing objects: full scan (Fig 7a's dead end).\n")
	fmt.Fprintf(&b, "=> ROOT-TID addresses find candidate objects but must scan inside them.\n")
	fmt.Fprintf(&b, "=> Hierarchical addresses resolve the conjunction by path-prefix comparison (P2 = F2, Fig 7b).\n")
	return Report{ID: "F7", Title: "Fig 7: index address strategies on a conjunctive query", Text: b.String()}, nil
}

// figureF8 reproduces Fig 8: the tuple names U, V, T, W and X of
// department 314 and their direct resolution.
func figureF8() (Report, error) {
	pool := buffer.NewPool(256)
	pool.Register(1, segment.NewMemStore())
	st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
	m := object.NewManager(st, object.SS3)
	tt := testdata.DepartmentsType()
	ref, err := m.Insert(tt, testdata.Departments().Tuples[0])
	if err != nil {
		return Report{}, err
	}
	reg := tname.NewRegistry(m, tt)
	var b strings.Builder
	u := tname.ObjectName(ref)
	fmt.Fprintf(&b, "U (department 314 as a whole)   = %s\n", u)
	v, err := reg.SubobjectName(ref, object.Step{Attr: 2, Pos: 0})
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "V (complex subobject project 17) = %s\n", v)
	tn, err := reg.SubobjectName(ref, object.Step{Attr: 2, Pos: 0}, object.Step{Attr: 2, Pos: 1})
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "T (flat subobject '56019 Consultant') = %s\n", tn)
	w, err := reg.SubtableName(ref, 2)
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "W (PROJECTS subtable)            = %s\n", w)
	x, err := reg.SubtableName(ref, 2, object.Step{Attr: 2, Pos: 0})
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "X (MEMBERS subtable of proj 17)  = %s\n\n", x)

	member, err := reg.ResolveTuple(tn)
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "resolve(T) -> %v\n", member)
	members, err := reg.ResolveSubtable(x)
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "resolve(X) -> %d members: %v\n", members.Len(), members)
	token := tn.Encode()
	back, err := tname.Decode(token)
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "\nT as an application token: %s (round-trips: %v)\n", token, back.Root == tn.Root)
	b.WriteString("\n=> t-names reuse hierarchical addresses; subtable t-names (W, X) are the\n")
	b.WriteString("   'special' form not allowed as index addresses (§4.3).\n")
	return Report{ID: "F8", Title: "Fig 8: tuple names for department 314", Text: b.String()}, nil
}
