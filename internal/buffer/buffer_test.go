package buffer

import (
	"testing"

	"repro/internal/page"
	"repro/internal/segment"
)

func newPoolWithSeg(t testing.TB, capacity int) (*Pool, *segment.MemStore) {
	t.Helper()
	p := NewPool(capacity)
	st := segment.NewMemStore()
	p.Register(1, st)
	return p, st
}

func TestPinNewAndHit(t *testing.T) {
	p, _ := newPoolWithSeg(t, 4)
	no, err := p.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.PinNew(PageKey{Seg: 1, Page: no})
	if err != nil {
		t.Fatal(err)
	}
	slot, err := f.Page.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, true)

	f2, err := p.Pin(PageKey{Seg: 1, Page: no})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f2.Page.Read(slot)
	if err != nil || string(rec) != "hello" {
		t.Fatalf("read = %q, %v", rec, err)
	}
	p.Unpin(f2, false)
	st := p.Stats()
	if st.Hits != 1 || st.Reads != 0 {
		t.Errorf("stats = %+v, want 1 hit 0 reads", st)
	}
}

func TestEvictionWritesBackAndReloads(t *testing.T) {
	p, _ := newPoolWithSeg(t, 2)
	var pages []uint32
	for i := 0; i < 4; i++ {
		no, _ := p.Allocate(1)
		f, err := p.PinNew(PageKey{Seg: 1, Page: no})
		if err != nil {
			t.Fatal(err)
		}
		f.Page.Insert([]byte{byte(i)})
		p.Unpin(f, true)
		pages = append(pages, no)
	}
	// Earlier pages were evicted; re-pinning must reload them intact.
	for i, no := range pages {
		f, err := p.Pin(PageKey{Seg: 1, Page: no})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := f.Page.Read(0)
		if err != nil || rec[0] != byte(i) {
			t.Errorf("page %d lost content: %v %v", no, rec, err)
		}
		p.Unpin(f, false)
	}
	if p.Stats().Writes == 0 {
		t.Error("no write-backs recorded despite eviction")
	}
}

func TestPoolExhaustedWhenAllPinned(t *testing.T) {
	p, _ := newPoolWithSeg(t, 2)
	var frames []*Frame
	for i := 0; i < 2; i++ {
		no, _ := p.Allocate(1)
		f, err := p.PinNew(PageKey{Seg: 1, Page: no})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	no, _ := p.Allocate(1)
	if _, err := p.PinNew(PageKey{Seg: 1, Page: no}); err == nil {
		t.Error("pinned past capacity")
	}
	for _, f := range frames {
		p.Unpin(f, false)
	}
	if _, err := p.Pin(PageKey{Seg: 1, Page: no}); err == nil {
		// After unpinning, eviction frees a frame; note the page was
		// never written, so the read may legitimately fail at the
		// store level instead.
		t.Log("pin after unpin succeeded")
	}
}

func TestFlushHookEnforcedBeforeWriteBack(t *testing.T) {
	p, _ := newPoolWithSeg(t, 1)
	var hooked []uint64
	p.FlushHook = func(key PageKey, lsn uint64) error {
		hooked = append(hooked, lsn)
		return nil
	}
	no, _ := p.Allocate(1)
	f, _ := p.PinNew(PageKey{Seg: 1, Page: no})
	f.Page.SetLSN(42)
	p.Unpin(f, true)
	// Force eviction by pinning another page.
	no2, _ := p.Allocate(1)
	f2, err := p.PinNew(PageKey{Seg: 1, Page: no2})
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f2, false)
	if len(hooked) != 1 || hooked[0] != 42 {
		t.Errorf("flush hook calls = %v", hooked)
	}
}

func TestFlushAllAndInvalidate(t *testing.T) {
	p, st := newPoolWithSeg(t, 8)
	no, _ := p.Allocate(1)
	f, _ := p.PinNew(PageKey{Seg: 1, Page: no})
	f.Page.Insert([]byte("persisted"))
	p.Unpin(f, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, page.Size)
	if err := st.ReadPage(no, buf); err != nil {
		t.Fatal(err)
	}
	pg := page.View(buf)
	rec, err := pg.Read(0)
	if err != nil || string(rec) != "persisted" {
		t.Errorf("store content = %q, %v", rec, err)
	}
	p.InvalidateAll()
	f2, err := p.Pin(PageKey{Seg: 1, Page: no})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ = f2.Page.Read(0)
	if string(rec) != "persisted" {
		t.Error("reload after invalidate lost data")
	}
	p.Unpin(f2, false)
}

func TestUnregisteredSegment(t *testing.T) {
	p := NewPool(4)
	if _, err := p.Pin(PageKey{Seg: 9, Page: 1}); err == nil {
		t.Error("pin on unregistered segment succeeded")
	}
	if _, err := p.Allocate(9); err == nil {
		t.Error("allocate on unregistered segment succeeded")
	}
}
