package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/page"
	"repro/internal/segment"
)

// refPool is the pre-sharding buffer pool, vendored verbatim as the
// reference model for TestShardedPoolEquivalence: a single mutex, one
// frame map, one LRU, one sealed set. Each shard of the sharded pool
// must behave exactly like one refPool of the shard's capacity —
// same hit/miss classification, same eviction victims, same sealed
// verdicts, same counters.
type refPool struct {
	mu       sync.Mutex
	capacity int
	stores   map[segment.ID]segment.Store
	frames   map[PageKey]*refFrame
	lru      *list.List
	stats    Stats
	sealed   map[PageKey]struct{}
}

type refFrame struct {
	key   PageKey
	page  *page.Page
	buf   []byte
	pins  int
	dirty bool
	lru   *list.Element
}

func newRefPool(capacity int) *refPool {
	if capacity < 1 {
		capacity = 1
	}
	return &refPool{
		capacity: capacity,
		stores:   make(map[segment.ID]segment.Store),
		frames:   make(map[PageKey]*refFrame),
		lru:      list.New(),
		sealed:   make(map[PageKey]struct{}),
	}
}

func (p *refPool) register(id segment.ID, st segment.Store) { p.stores[id] = st }

func (p *refPool) snapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

func (p *refPool) pin(key PageKey) (*refFrame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Fetches++
	if f, ok := p.frames[key]; ok {
		p.stats.Hits++
		if f.lru != nil {
			p.lru.Remove(f.lru)
			f.lru = nil
		}
		f.pins++
		return f, nil
	}
	st := p.stores[key.Seg]
	if st == nil {
		return nil, fmt.Errorf("refpool: segment %d not registered", key.Seg)
	}
	f, err := p.freeFrameLocked()
	if err != nil {
		return nil, err
	}
	p.stats.Reads++
	if err := st.ReadPage(key.Page, f.buf); err != nil {
		return nil, err
	}
	if !f.page.ChecksumOK(uint16(key.Seg), key.Page) {
		return nil, fmt.Errorf("%w: checksum mismatch at %v.%d", ErrCorrupt, key.Seg, key.Page)
	}
	if _, wasSealed := p.sealed[key]; wasSealed && !f.page.Sealed() {
		return nil, fmt.Errorf("%w: sealed page %v.%d reads back all-zero", ErrCorrupt, key.Seg, key.Page)
	}
	f.key = key
	f.pins = 1
	f.dirty = false
	p.frames[key] = f
	return f, nil
}

func (p *refPool) pinNew(key PageKey) (*refFrame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Fetches++
	if _, ok := p.frames[key]; ok {
		return nil, fmt.Errorf("refpool: PinNew of already-buffered page %v", key)
	}
	f, err := p.freeFrameLocked()
	if err != nil {
		return nil, err
	}
	f.key = key
	f.pins = 1
	f.dirty = true
	f.page.Init()
	p.frames[key] = f
	return f, nil
}

func (p *refPool) unpin(f *refFrame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins < 0 {
		panic("refpool: unpin of unpinned frame")
	}
	if f.pins == 0 {
		f.lru = p.lru.PushFront(f)
	}
}

func (p *refPool) freeFrameLocked() (*refFrame, error) {
	if len(p.frames) < p.capacity {
		buf := make([]byte, page.Size)
		return &refFrame{buf: buf, page: page.View(buf)}, nil
	}
	el := p.lru.Back()
	if el == nil {
		return nil, fmt.Errorf("refpool: pool exhausted (%d frames, all pinned)", p.capacity)
	}
	victim := el.Value.(*refFrame)
	p.lru.Remove(el)
	victim.lru = nil
	if victim.dirty {
		if err := p.writeBackLocked(victim); err != nil {
			victim.lru = p.lru.PushBack(victim)
			return nil, err
		}
	}
	delete(p.frames, victim.key)
	return victim, nil
}

func (p *refPool) writeBackLocked(f *refFrame) error {
	st := p.stores[f.key.Seg]
	if st == nil {
		return fmt.Errorf("refpool: segment %d not registered", f.key.Seg)
	}
	f.page.Seal(uint16(f.key.Seg), f.key.Page)
	p.stats.Writes++
	if err := st.WritePage(f.key.Page, f.buf); err != nil {
		return err
	}
	p.sealed[f.key] = struct{}{}
	f.dirty = false
	return nil
}

func (p *refPool) flushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty {
			if err := p.writeBackLocked(f); err != nil {
				return err
			}
		}
	}
	for _, st := range p.stores {
		if err := st.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (p *refPool) invalidateAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = make(map[PageKey]*refFrame)
	p.lru.Init()
}
