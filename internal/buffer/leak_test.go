package buffer

import (
	"errors"
	"testing"

	"repro/internal/segment"
)

// failingStore wraps a MemStore and fails the next N page writes.
type failingStore struct {
	*segment.MemStore
	failWrites int
}

var errWriteFault = errors.New("failingStore: write fault")

func (s *failingStore) WritePage(no uint32, buf []byte) error {
	if s.failWrites > 0 {
		s.failWrites--
		return errWriteFault
	}
	return s.MemStore.WritePage(no, buf)
}

// TestEvictionWriteBackErrorKeepsFrameEvictable is the regression
// test for a frame leak: freeFrameLocked removed the eviction victim
// from the LRU before writing it back, so a write-back error left the
// frame buffered but unevictable forever — each failed eviction
// permanently shrank the pool by one frame. After the store heals,
// the same frame must be evictable again.
func TestEvictionWriteBackErrorKeepsFrameEvictable(t *testing.T) {
	p := NewPool(1)
	st := &failingStore{MemStore: segment.NewMemStore()}
	p.Register(1, st)

	no, _ := p.Allocate(1)
	f, err := p.PinNew(PageKey{Seg: 1, Page: no})
	if err != nil {
		t.Fatal(err)
	}
	f.Page.Insert([]byte("dirty"))
	p.Unpin(f, true)

	// Eviction must fail while the store is failing...
	st.failWrites = 1
	no2, _ := p.Allocate(1)
	if _, err := p.PinNew(PageKey{Seg: 1, Page: no2}); !errors.Is(err, errWriteFault) {
		t.Fatalf("want the write fault surfaced, got %v", err)
	}
	// ...and succeed once it heals: the victim must still be on the
	// LRU. Before the fix this returned "pool exhausted" forever.
	f2, err := p.PinNew(PageKey{Seg: 1, Page: no2})
	if err != nil {
		t.Fatalf("pool did not recover after write-back error: %v", err)
	}
	p.Unpin(f2, false)

	// The evicted page's content must have reached the store.
	f3, err := p.Pin(PageKey{Seg: 1, Page: no})
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := f3.Page.Read(0); err != nil || string(rec) != "dirty" {
		t.Fatalf("evicted page content lost: %q %v", rec, err)
	}
	p.Unpin(f3, false)
}

// TestPoolReusableAfterExhaustion: exhaustion is a clean statement
// error, not a terminal state — unpinning restores full capacity.
func TestPoolReusableAfterExhaustion(t *testing.T) {
	p, _ := newPoolWithSeg(t, 2)
	var frames []*Frame
	var nos []uint32
	for i := 0; i < 2; i++ {
		no, _ := p.Allocate(1)
		f, err := p.PinNew(PageKey{Seg: 1, Page: no})
		if err != nil {
			t.Fatal(err)
		}
		f.Page.Insert([]byte{byte(i)})
		frames = append(frames, f)
		nos = append(nos, no)
	}
	if got := p.PinnedCount(); got != 2 {
		t.Fatalf("PinnedCount = %d, want 2", got)
	}
	no, _ := p.Allocate(1)
	if _, err := p.PinNew(PageKey{Seg: 1, Page: no}); err == nil {
		t.Fatal("expected pool exhausted")
	}
	for _, f := range frames {
		p.Unpin(f, true)
	}
	if got := p.PinnedCount(); got != 0 {
		t.Fatalf("PinnedCount = %d after unpinning, want 0", got)
	}
	// Full capacity is back: pin a new page, then re-pin both old ones.
	f, err := p.PinNew(PageKey{Seg: 1, Page: no})
	if err != nil {
		t.Fatalf("pool still exhausted after unpin: %v", err)
	}
	p.Unpin(f, false)
	for i, n := range nos {
		f, err := p.Pin(PageKey{Seg: 1, Page: n})
		if err != nil {
			t.Fatal(err)
		}
		if rec, err := f.Page.Read(0); err != nil || rec[0] != byte(i) {
			t.Fatalf("page %d content: %v %v", n, rec, err)
		}
		p.Unpin(f, false)
	}
}

// TestUnpinUnderflowPanics pins the documented invariant: an
// unbalanced unpin is a caller bug and must panic (the engine
// converts it into a failed statement).
func TestUnpinUnderflowPanics(t *testing.T) {
	p, _ := newPoolWithSeg(t, 2)
	no, _ := p.Allocate(1)
	f, err := p.PinNew(PageKey{Seg: 1, Page: no})
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double unpin should panic")
		}
	}()
	p.Unpin(f, false)
}
