package buffer

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/segment"
)

// recordingStore wraps a MemStore and records the order of page
// write-backs, so eviction victims are observable.
type recordingStore struct {
	*segment.MemStore
	writes []uint32
}

func (s *recordingStore) WritePage(no uint32, buf []byte) error {
	s.writes = append(s.writes, no)
	return s.MemStore.WritePage(no, buf)
}

// take returns and clears the recorded write sequence.
func (s *recordingStore) take() []uint32 {
	w := s.writes
	s.writes = nil
	return w
}

func sortedU32(a []uint32) []uint32 {
	out := append([]uint32(nil), a...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedPoolEquivalence replays random Pin/Unpin/mutate/FlushAll
// traces against the sharded pool and, per shard, against the old
// single-lock pool (refPool) as a reference model. Every observable
// must match: hit/miss classification per pin, eviction victims
// (write-back sequences), corruption verdicts, cumulative counters,
// and the final store images.
func TestShardedPoolEquivalence(t *testing.T) {
	for _, cfg := range []struct{ capacity, shards int }{
		{4, 1}, {8, 2}, {16, 4}, {32, 4},
	} {
		for seed := int64(1); seed <= 6; seed++ {
			t.Run(fmt.Sprintf("cap%d_shards%d_seed%d", cfg.capacity, cfg.shards, seed), func(t *testing.T) {
				replayEquivalenceTrace(t, cfg.capacity, cfg.shards, seed)
			})
		}
	}
}

func replayEquivalenceTrace(t *testing.T, capacity, shards int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const pages = 24

	p := NewPoolShards(capacity, shards)
	if p.ShardCount() != shards {
		t.Fatalf("ShardCount = %d, want %d", p.ShardCount(), shards)
	}
	perShard := (capacity + shards - 1) / shards
	shardedStore := &recordingStore{MemStore: segment.NewMemStore()}
	p.Register(1, shardedStore)

	refs := make([]*refPool, shards)
	refStores := make([]*recordingStore, shards)
	for i := range refs {
		refs[i] = newRefPool(perShard)
		refStores[i] = &recordingStore{MemStore: segment.NewMemStore()}
		refs[i].register(1, refStores[i])
	}
	// The same page numbers must be valid in every store.
	for pg := 1; pg <= pages; pg++ {
		shardedStore.Allocate()
		for _, rs := range refStores {
			rs.Allocate()
		}
	}

	sumRefs := func() Stats {
		var s Stats
		for _, r := range refs {
			rs := r.snapshot()
			s.Fetches += rs.Fetches
			s.Hits += rs.Hits
			s.Reads += rs.Reads
			s.Writes += rs.Writes
		}
		return s
	}
	// compareEvictions checks that the write-backs a single pin caused
	// match the reference model's exactly (same victims, same order).
	compareEvictions := func(op string, shard int) {
		got, want := shardedStore.take(), refStores[shard].take()
		if !equalU32(got, want) {
			t.Fatalf("%s: eviction write-backs diverged: sharded wrote %v, reference wrote %v", op, got, want)
		}
	}
	// compareFlush checks FlushAll write-backs per shard as multisets:
	// both pools flush in map-iteration order, which is deliberately
	// unordered, so only the victim sets are comparable.
	compareFlush := func() {
		all := shardedStore.take()
		byShard := make([][]uint32, shards)
		for _, pg := range all {
			i := p.ShardIndex(PageKey{Seg: 1, Page: pg})
			byShard[i] = append(byShard[i], pg)
		}
		for i := range refs {
			got, want := sortedU32(byShard[i]), sortedU32(refStores[i].take())
			if !equalU32(got, want) {
				t.Fatalf("FlushAll: shard %d flushed %v, reference flushed %v", i, got, want)
			}
		}
	}

	type held struct {
		key PageKey
		f   *Frame
		rf  *refFrame
	}
	var pins []held
	exhausted := false

	// Phase 1: create every page with identical seed content in both
	// pools (evictions may already happen here).
	for pg := uint32(1); pg <= pages; pg++ {
		key := PageKey{Seg: 1, Page: pg}
		shard := p.ShardIndex(key)
		f, err := p.PinNew(key)
		rf, rerr := refs[shard].pinNew(key)
		if (err == nil) != (rerr == nil) {
			t.Fatalf("PinNew(%d): sharded err=%v, reference err=%v", pg, err, rerr)
		}
		if err != nil {
			t.Fatalf("PinNew(%d) failed in both pools: %v", pg, err)
		}
		payload := []byte(fmt.Sprintf("seed-%d", pg))
		if _, err := f.Page.Insert(payload); err != nil {
			t.Fatal(err)
		}
		if _, err := rf.page.Insert(payload); err != nil {
			t.Fatal(err)
		}
		p.Unpin(f, true)
		refs[shard].unpin(rf, true)
		compareEvictions(fmt.Sprintf("PinNew(%d)", pg), shard)
	}

	// Phase 2: random trace.
	for op := 0; op < 600; op++ {
		switch r := rng.Intn(100); {
		case r < 50 && len(pins) < 2*perShard:
			pg := uint32(1 + rng.Intn(pages))
			key := PageKey{Seg: 1, Page: pg}
			shard := p.ShardIndex(key)
			before, refBefore := p.Stats(), refs[shard].snapshot()
			f, err := p.Pin(key)
			rf, rerr := refs[shard].pin(key)
			if (err == nil) != (rerr == nil) {
				t.Fatalf("op %d Pin(%d): sharded err=%v, reference err=%v", op, pg, err, rerr)
			}
			compareEvictions(fmt.Sprintf("op %d Pin(%d)", op, pg), shard)
			if err != nil {
				if errors.Is(err, ErrCorrupt) != errors.Is(rerr, ErrCorrupt) {
					t.Fatalf("op %d Pin(%d): error class diverged: %v vs %v", op, pg, err, rerr)
				}
				exhausted = true
				continue
			}
			after, refAfter := p.Stats(), refs[shard].snapshot()
			hit := after.Hits-before.Hits == 1
			refHit := refAfter.Hits-refBefore.Hits == 1
			if hit != refHit {
				t.Fatalf("op %d Pin(%d): sharded hit=%v, reference hit=%v", op, pg, hit, refHit)
			}
			pins = append(pins, held{key, f, rf})
		case len(pins) > 0 && r < 90:
			i := rng.Intn(len(pins))
			h := pins[i]
			pins = append(pins[:i], pins[i+1:]...)
			shard := p.ShardIndex(h.key)
			dirty := rng.Intn(2) == 0
			if dirty {
				payload := []byte(fmt.Sprintf("op-%d", op))
				_, e1 := h.f.Page.Insert(payload)
				_, e2 := h.rf.page.Insert(payload)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("op %d: page mutation diverged: %v vs %v", op, e1, e2)
				}
			}
			p.Unpin(h.f, dirty)
			refs[shard].unpin(h.rf, dirty)
		case r >= 95:
			if err := p.FlushAll(); err != nil {
				t.Fatal(err)
			}
			for _, ref := range refs {
				if err := ref.flushAll(); err != nil {
					t.Fatal(err)
				}
			}
			compareFlush()
		}
	}

	// Phase 3: drain and compare cumulative state.
	for _, h := range pins {
		p.Unpin(h.f, false)
		refs[p.ShardIndex(h.key)].unpin(h.rf, false)
	}
	if got := p.PinnedCount(); got != 0 {
		t.Fatalf("PinnedCount = %d after draining, want 0", got)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs {
		if err := ref.flushAll(); err != nil {
			t.Fatal(err)
		}
	}
	compareFlush()

	got, want := p.Stats(), sumRefs()
	if got != want {
		t.Fatalf("stats diverged: sharded %+v, reference %+v", got, want)
	}
	// Every logical access is either a buffer hit, a physical read, or
	// a fresh-page creation (PinNew performs no I/O by design).
	if !exhausted && got.Fetches != got.Hits+got.Reads+pages {
		t.Fatalf("invariant violated: Fetches %d != Hits %d + Reads %d + PinNews %d",
			got.Fetches, got.Hits, got.Reads, pages)
	}
	for pg := uint32(1); pg <= pages; pg++ {
		var a, b [4096]byte
		if err := shardedStore.ReadPage(pg, a[:]); err != nil {
			t.Fatal(err)
		}
		i := p.ShardIndex(PageKey{Seg: 1, Page: pg})
		if err := refStores[i].ReadPage(pg, b[:]); err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("store image of page %d diverged from reference", pg)
		}
	}

	// Phase 4: sealed-page verdicts. Zero half the pages underneath
	// both pools; a page both pools know to be sealed must fail
	// verification identically, an intact page must read identically.
	p.InvalidateAll()
	for _, ref := range refs {
		ref.invalidateAll()
	}
	zeros := make([]byte, 4096)
	for pg := uint32(1); pg <= pages; pg++ {
		key := PageKey{Seg: 1, Page: pg}
		shard := p.ShardIndex(key)
		if pg%2 == 0 {
			if err := shardedStore.WritePage(pg, zeros); err != nil {
				t.Fatal(err)
			}
			if err := refStores[shard].WritePage(pg, zeros); err != nil {
				t.Fatal(err)
			}
		}
		f, err := p.Pin(key)
		rf, rerr := refs[shard].pin(key)
		if (err == nil) != (rerr == nil) || errors.Is(err, ErrCorrupt) != errors.Is(rerr, ErrCorrupt) {
			t.Fatalf("sealed verdict diverged for page %d: sharded %v, reference %v", pg, err, rerr)
		}
		if pg%2 == 0 && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("zeroed sealed page %d not detected as corrupt: %v", pg, err)
		}
		if err == nil {
			p.Unpin(f, false)
			refs[shard].unpin(rf, false)
		}
	}
	shardedStore.take()
	for _, rs := range refStores {
		rs.take()
	}
}

// TestMarkSealedVerdict: a page marked sealed without ever being
// written back through the pool (recovery's path) must fail an
// all-zero read exactly like a written-back page.
func TestMarkSealedVerdict(t *testing.T) {
	p := NewPoolShards(8, 2)
	st := segment.NewMemStore()
	p.Register(1, st)
	no := st.Allocate()
	key := PageKey{Seg: 1, Page: no}

	// Unsealed zero page: reads fine (a fresh page).
	f, err := p.Pin(key)
	if err != nil {
		t.Fatalf("fresh zero page should pin: %v", err)
	}
	p.Unpin(f, false)

	p.InvalidateAll()
	p.MarkSealed(key)
	if _, err := p.Pin(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sealed page reading all-zero should be corrupt, got %v", err)
	}
}
