package buffer

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/segment"
)

// gatedStore blocks every physical read on a gate channel so the test
// can guarantee that concurrent pins of the same page really do pile
// up behind one in-flight read before it completes.
type gatedStore struct {
	*segment.MemStore
	gate  chan struct{}
	reads atomic.Int64
	// failFirst, when >0, makes that many leading read attempts fail.
	failFirst atomic.Int64
	transient bool
}

type injectedReadErr struct{ transient bool }

func (e *injectedReadErr) Error() string   { return "gatedStore: injected read fault" }
func (e *injectedReadErr) Transient() bool { return e.transient }

func (s *gatedStore) ReadPage(no uint32, buf []byte) error {
	s.reads.Add(1)
	if s.gate != nil {
		<-s.gate
	}
	if s.failFirst.Add(-1) >= 0 {
		return &injectedReadErr{transient: s.transient}
	}
	return s.MemStore.ReadPage(no, buf)
}

// sealPage materializes one sealed page in the store and leaves the
// pool empty, so the next Pin must fault it in physically.
func sealPage(t *testing.T, p *Pool, seg segment.ID) PageKey {
	t.Helper()
	no, err := p.Allocate(seg)
	if err != nil {
		t.Fatal(err)
	}
	key := PageKey{Seg: seg, Page: no}
	f, err := p.PinNew(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Page.Insert([]byte("dedup payload")); err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.InvalidateAll()
	return key
}

// waitForWaiters blocks until n goroutines are registered on the
// page's in-flight read (the reader itself is not a waiter).
func waitForWaiters(t *testing.T, p *Pool, key PageKey, n int) {
	t.Helper()
	sh := p.shardOf(key)
	deadline := time.Now().Add(5 * time.Second)
	for {
		sh.mu.Lock()
		fl := sh.reading[key]
		w := -1
		if fl != nil {
			w = fl.waiters
		}
		sh.mu.Unlock()
		if w >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d in-flight waiters (have %d)", n, w)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestReadDeduplication: K goroutines pinning the same absent page
// perform exactly one physical read; all observe the same frame, and
// the K-1 joiners count as buffer hits.
func TestReadDeduplication(t *testing.T) {
	const K = 16
	p := NewPoolShards(64, 4)
	st := &gatedStore{MemStore: segment.NewMemStore(), gate: make(chan struct{})}
	p.Register(1, st)
	key := sealPage(t, p, 1)
	st.reads.Store(0)
	p.ResetStats()

	frames := make([]*Frame, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			frames[i], errs[i] = p.Pin(key)
		}(i)
	}
	waitForWaiters(t, p, key, K-1)
	close(st.gate)
	wg.Wait()

	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("pin %d failed: %v", i, errs[i])
		}
		if frames[i] != frames[0] {
			t.Fatalf("pin %d got a different frame than pin 0", i)
		}
	}
	if got := st.reads.Load(); got != 1 {
		t.Fatalf("physical reads = %d, want exactly 1", got)
	}
	s := p.Stats()
	if s.Fetches != K || s.Reads != 1 || s.Hits != K-1 {
		t.Fatalf("stats = %+v, want Fetches=%d Reads=1 Hits=%d", s, K, K-1)
	}
	for i := 0; i < K; i++ {
		p.Unpin(frames[i], false)
	}
	if got := p.PinnedCount(); got != 0 {
		t.Fatalf("PinnedCount = %d after unpinning all, want 0", got)
	}
	// The shared frame must hold the real page content.
	f, err := p.Pin(key)
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := f.Page.Read(0); err != nil || string(rec) != "dedup payload" {
		t.Fatalf("page content = %q, %v", rec, err)
	}
	p.Unpin(f, false)
}

// TestReadDeduplicationTransientFault: the single deduplicated read
// fails transiently and is retried inside the store's retry wrapper;
// every waiter sees the retried (successful) result, and the fault is
// not replayed once per waiter.
func TestReadDeduplicationTransientFault(t *testing.T) {
	const K = 8
	p := NewPoolShards(64, 4)
	raw := &gatedStore{MemStore: segment.NewMemStore(), transient: true}
	p.Register(1, segment.WithRetry(raw, segment.RetryPolicy{Tries: 3}))
	key := sealPage(t, p, 1)
	raw.reads.Store(0)
	p.ResetStats()

	// Gate only from now on: the first attempt blocks until the
	// waiters have piled up, then fails transiently; the in-wrapper
	// retry succeeds.
	raw.gate = make(chan struct{})
	raw.failFirst.Store(1)

	frames := make([]*Frame, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			frames[i], errs[i] = p.Pin(key)
		}(i)
	}
	waitForWaiters(t, p, key, K-1)
	close(raw.gate)
	wg.Wait()

	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("pin %d failed despite in-read retry: %v", i, errs[i])
		}
		if frames[i] != frames[0] {
			t.Fatalf("pin %d got a different frame", i)
		}
	}
	// One failed attempt + one retry — not one retry sequence per
	// waiter.
	if got := raw.reads.Load(); got != 2 {
		t.Fatalf("physical read attempts = %d, want 2 (fault + retry)", got)
	}
	if s := p.Stats(); s.Reads != 1 {
		t.Fatalf("pool Reads = %d, want 1 (the retry is inside one logical read)", s.Reads)
	}
	for i := 0; i < K; i++ {
		p.Unpin(frames[i], false)
	}
}

// TestReadDeduplicationFailure: a persistently failing read reports
// the same error to every waiter, removes the in-flight entry so a
// later pin starts fresh, and leaves the pool fully usable.
func TestReadDeduplicationFailure(t *testing.T) {
	const K = 8
	p := NewPoolShards(64, 4)
	raw := &gatedStore{MemStore: segment.NewMemStore()}
	p.Register(1, raw)
	key := sealPage(t, p, 1)
	raw.reads.Store(0)

	raw.gate = make(chan struct{})
	raw.failFirst.Store(1) // persistent (non-transient) fault

	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Pin(key)
		}(i)
	}
	waitForWaiters(t, p, key, K-1)
	close(raw.gate)
	wg.Wait()

	var injected *injectedReadErr
	for i := 0; i < K; i++ {
		if !errors.As(errs[i], &injected) {
			t.Fatalf("pin %d error = %v, want the injected fault", i, errs[i])
		}
	}
	if got := raw.reads.Load(); got != 1 {
		t.Fatalf("physical read attempts = %d, want 1 (the fault is not replayed per waiter)", got)
	}
	if got := p.PinnedCount(); got != 0 {
		t.Fatalf("PinnedCount = %d after failed pins, want 0", got)
	}
	// The store healed; the next pin re-reads and succeeds.
	f, err := p.Pin(key)
	if err != nil {
		t.Fatalf("pin after heal: %v", err)
	}
	if rec, err := f.Page.Read(0); err != nil || string(rec) != "dedup payload" {
		t.Fatalf("page content after heal = %q, %v", rec, err)
	}
	p.Unpin(f, false)
}

// TestConcurrentStatsNoTearing hammers the lock-free Stats/PinnedCount
// snapshots while readers fault pages in and out across every shard;
// run under -race this pins down that the sharded pool's counters are
// safe to read mid-flight, and serially it checks monotonicity (a
// torn or lost update would show counters going backwards).
func TestConcurrentStatsNoTearing(t *testing.T) {
	p := NewPoolShards(32, 4)
	st := segment.NewMemStore()
	p.Register(1, st)
	const pages = 64
	keys := make([]PageKey, pages)
	for i := range keys {
		keys[i] = sealPage(t, p, 1)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f, err := p.Pin(keys[(i*7+w*13)%pages])
				if err != nil {
					t.Errorf("worker pin: %v", err)
					return
				}
				p.Unpin(f, false)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last Stats
		for i := 0; i < 20000; i++ {
			s := p.Stats()
			if s.Fetches < last.Fetches || s.Hits < last.Hits || s.Reads < last.Reads || s.Writes < last.Writes {
				t.Errorf("counters went backwards: %+v after %+v", s, last)
				return
			}
			last = s
			p.PinnedCount()
			p.MarkSealed(keys[i%pages])
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}
