// Package buffer implements the buffer pool shared by all segments
// of a database: a fixed set of page frames with pin/unpin semantics,
// LRU replacement of unpinned frames, dirty-page write-back, and the
// access statistics (logical fetches, physical reads and writes) that
// the storage experiments report.
package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/dberr"
	"repro/internal/page"
	"repro/internal/segment"
)

// PageKey identifies a page across segments.
type PageKey struct {
	Seg  segment.ID
	Page uint32
}

// Frame is one buffered page. The Page view is valid while the frame
// is pinned.
type Frame struct {
	Key   PageKey
	Page  *page.Page
	buf   []byte
	pins  int
	dirty bool
	lru   *list.Element
}

// Stats counts buffer pool traffic. Fetches is the number of logical
// page accesses (Pin calls); Reads and Writes count physical I/O to
// the backing stores.
type Stats struct {
	Fetches uint64
	Hits    uint64
	Reads   uint64
	Writes  uint64
}

// Pool is the buffer pool.
type Pool struct {
	mu       sync.Mutex
	capacity int
	stores   map[segment.ID]segment.Store
	frames   map[PageKey]*Frame
	lru      *list.List // front = most recently used; only unpinned frames
	stats    Stats
	// sealed records every page known to hold a sealed (checksummed)
	// image on its backing store: pages this pool wrote back plus pages
	// recovery proved to hold committed data (MarkSealed). A verified
	// read of such a page that comes back all-zero/unsealed is
	// corruption (zeroed rot), not a fresh page — without this record
	// the zeroed image would be indistinguishable from a page that was
	// never written.
	sealed map[PageKey]struct{}

	// FlushHook, when set, runs before a dirty frame is written back;
	// the WAL uses it to enforce the write-ahead rule.
	FlushHook func(key PageKey, lsn uint64) error
}

// NewPool creates a pool with room for capacity pages.
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		capacity: capacity,
		stores:   make(map[segment.ID]segment.Store),
		frames:   make(map[PageKey]*Frame),
		lru:      list.New(),
		sealed:   make(map[PageKey]struct{}),
	}
}

// Register attaches a segment store to the pool under the given id.
func (p *Pool) Register(id segment.ID, st segment.Store) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stores[id] = st
}

// Store returns the registered store for a segment.
func (p *Pool) Store(id segment.ID) segment.Store {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stores[id]
}

// Stats returns a snapshot of the access counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the access counters.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Allocate reserves a fresh page in the segment and returns its
// number. The page is not formatted; callers Pin it and Init the
// page view.
func (p *Pool) Allocate(id segment.ID) (uint32, error) {
	p.mu.Lock()
	st := p.stores[id]
	p.mu.Unlock()
	if st == nil {
		return 0, fmt.Errorf("buffer: segment %d not registered", id)
	}
	return st.Allocate(), nil
}

// ErrCorrupt reports a page image that failed checksum verification
// when read from its backing store — the signature of a torn write at
// a crash, of bit rot, or of a lost or misdirected write. It wraps the
// cross-layer dberr.ErrCorrupt sentinel, so errors.Is classifies it as
// corruption anywhere in the stack. Recovery reformats such pages and
// rebuilds them from the log; outside recovery the engine quarantines
// the object that needed the page.
var ErrCorrupt = fmt.Errorf("buffer: page failed verification: %w", dberr.ErrCorrupt)

// Pin fetches the page into a frame and pins it. Every Pin must be
// matched by an Unpin.
func (p *Pool) Pin(key PageKey) (*Frame, error) { return p.pin(key, true) }

// PinNoVerify is Pin without checksum verification on the physical
// read. Only crash recovery uses it: a torn page must still be loaded
// so it can be reformatted and rebuilt from the log.
func (p *Pool) PinNoVerify(key PageKey) (*Frame, error) { return p.pin(key, false) }

func (p *Pool) pin(key PageKey, verify bool) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Fetches++
	if f, ok := p.frames[key]; ok {
		p.stats.Hits++
		if f.lru != nil {
			p.lru.Remove(f.lru)
			f.lru = nil
		}
		f.pins++
		return f, nil
	}
	st := p.stores[key.Seg]
	if st == nil {
		return nil, fmt.Errorf("buffer: segment %d not registered", key.Seg)
	}
	f, err := p.freeFrameLocked()
	if err != nil {
		return nil, err
	}
	p.stats.Reads++
	if err := st.ReadPage(key.Page, f.buf); err != nil {
		p.releaseFrameLocked(f)
		return nil, err
	}
	if verify {
		if !f.Page.ChecksumOK(uint16(key.Seg), key.Page) {
			p.releaseFrameLocked(f)
			return nil, fmt.Errorf("%w: checksum mismatch at %v.%d", ErrCorrupt, key.Seg, key.Page)
		}
		if _, wasSealed := p.sealed[key]; wasSealed && !f.Page.Sealed() {
			// The image passed ChecksumOK only because it is all zeros —
			// but this page was sealed before, so its content was lost.
			p.releaseFrameLocked(f)
			return nil, fmt.Errorf("%w: sealed page %v.%d reads back all-zero", ErrCorrupt, key.Seg, key.Page)
		}
	}
	f.Key = key
	f.pins = 1
	f.dirty = false
	p.frames[key] = f
	return f, nil
}

// PinNew pins a freshly allocated page and initializes it as an empty
// slotted page, skipping the physical read.
func (p *Pool) PinNew(key PageKey) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Fetches++
	if _, ok := p.frames[key]; ok {
		return nil, fmt.Errorf("buffer: PinNew of already-buffered page %v", key)
	}
	f, err := p.freeFrameLocked()
	if err != nil {
		return nil, err
	}
	f.Key = key
	f.pins = 1
	f.dirty = true
	f.Page.Init()
	p.frames[key] = f
	return f, nil
}

// Unpin releases one pin; dirty marks the frame as modified.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins < 0 {
		// Deliberately a panic, not an error: an unbalanced unpin is a
		// programming bug in a caller's pin/unpin pairing, never a
		// runtime condition a statement could recover from — and by the
		// time it fires the frame accounting is already wrong. The
		// engine's statement-abort path recovers such panics, fails the
		// statement, and rebuilds the pool, so a bug here degrades to a
		// failed statement instead of a dead process.
		panic("buffer: unpin of unpinned frame")
	}
	if f.pins == 0 {
		f.lru = p.lru.PushFront(f)
	}
}

// freeFrameLocked finds or evicts a frame.
func (p *Pool) freeFrameLocked() (*Frame, error) {
	if len(p.frames) < p.capacity {
		buf := make([]byte, page.Size)
		return &Frame{buf: buf, Page: page.View(buf)}, nil
	}
	// Evict the least recently used unpinned frame.
	el := p.lru.Back()
	if el == nil {
		return nil, fmt.Errorf("buffer: pool exhausted (%d frames, all pinned)", p.capacity)
	}
	victim := el.Value.(*Frame)
	p.lru.Remove(el)
	victim.lru = nil
	if victim.dirty {
		if err := p.writeBackLocked(victim); err != nil {
			// Put the victim back on the LRU: it is still a valid
			// buffered page. Leaving it off the list while it stays in
			// p.frames would make it unevictable forever, shrinking the
			// pool by one frame per failed write-back.
			victim.lru = p.lru.PushBack(victim)
			return nil, err
		}
	}
	delete(p.frames, victim.Key)
	return victim, nil
}

func (p *Pool) releaseFrameLocked(f *Frame) {
	// A frame that failed to load is simply dropped; it was never in
	// p.frames.
}

func (p *Pool) writeBackLocked(f *Frame) error {
	if p.FlushHook != nil {
		if err := p.FlushHook(f.Key, f.Page.LSN()); err != nil {
			return err
		}
	}
	st := p.stores[f.Key.Seg]
	if st == nil {
		return fmt.Errorf("buffer: segment %d not registered", f.Key.Seg)
	}
	f.Page.Seal(uint16(f.Key.Seg), f.Key.Page)
	p.stats.Writes++
	if err := st.WritePage(f.Key.Page, f.buf); err != nil {
		return err
	}
	p.sealed[f.Key] = struct{}{}
	f.dirty = false
	return nil
}

// MarkSealed records that the page's backing store holds (or must
// hold) a sealed image, so an all-zero read of it fails verification.
// Crash recovery calls this for every page it proves to carry
// committed data.
func (p *Pool) MarkSealed(key PageKey) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sealed[key] = struct{}{}
}

// FlushAll writes back every dirty frame (pinned or not) and syncs
// all stores. Used at commit, checkpoint and shutdown.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty {
			if err := p.writeBackLocked(f); err != nil {
				return err
			}
		}
	}
	for _, st := range p.stores {
		if err := st.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// InvalidateAll drops every frame without writing back, including
// pinned ones (their pin counts are abandoned). Crash-simulation
// tests use it to model losing the page cache; the engine's
// statement-abort path uses it to discard an aborted statement's
// buffered effects — and any pins leaked by a recovered panic —
// before rebuilding the committed state from the log.
func (p *Pool) InvalidateAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = make(map[PageKey]*Frame)
	p.lru.Init()
}

// PinnedCount returns the number of currently pinned frames; tests
// use it to verify that error and cancellation paths release every
// page.
func (p *Pool) PinnedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}
