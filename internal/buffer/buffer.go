// Package buffer implements the buffer pool shared by all segments
// of a database: a fixed set of page frames with pin/unpin semantics,
// LRU replacement of unpinned frames, dirty-page write-back, and the
// access statistics (logical fetches, physical reads and writes) that
// the storage experiments report.
//
// The pool is lock-striped for concurrent readers: page keys hash to
// independent shards, each with its own mutex, frame map, LRU list and
// sealed-page set, so pins of unrelated pages never contend. Physical
// reads happen outside the shard lock, deduplicated through a
// per-shard in-flight read table: when N goroutines fault the same
// absent page, exactly one performs the store read and the other N-1
// wait on it and share the resulting frame (counted as buffer hits).
// Access counters are shard-local atomics merged on demand, so Stats()
// never takes a lock and never serializes the hot path.
package buffer

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dberr"
	"repro/internal/page"
	"repro/internal/segment"
)

// PageKey identifies a page across segments.
type PageKey struct {
	Seg  segment.ID
	Page uint32
}

// Frame is one buffered page. The Page view is valid while the frame
// is pinned.
//
// Concurrent pinners of the same frame coordinate through the frame
// latch (RLatch/Latch): readers of the page image take the shared
// latch, mutators the exclusive one, each only for the duration of
// one page operation. The latch is what lets snapshot readers stream
// pages while a transaction commit writes them — there is no global
// statement lock above it.
type Frame struct {
	Key   PageKey
	Page  *page.Page
	buf   []byte
	pins  int
	dirty bool
	lru   *list.Element

	latch sync.RWMutex
}

// RLatch takes the frame's shared latch for reading the page image.
func (f *Frame) RLatch() { f.latch.RLock() }

// RUnlatch releases the shared latch.
func (f *Frame) RUnlatch() { f.latch.RUnlock() }

// Latch takes the frame's exclusive latch for mutating the page image.
func (f *Frame) Latch() { f.latch.Lock() }

// Unlatch releases the exclusive latch.
func (f *Frame) Unlatch() { f.latch.Unlock() }

// Stats counts buffer pool traffic. Fetches is the number of logical
// page accesses (Pin calls); Reads and Writes count physical I/O to
// the backing stores. For successful pins Fetches == Hits + Reads: a
// pin that joins an in-flight read of the same page counts as a hit
// (it performed no physical I/O of its own).
type Stats struct {
	Fetches uint64
	Hits    uint64
	Reads   uint64
	Writes  uint64
}

// shardStats are one shard's counters. They are plain atomics rather
// than mutex-guarded fields so that the hot pin path never serializes
// on statistics and Stats() snapshots are torn-read free.
type shardStats struct {
	fetches atomic.Uint64
	hits    atomic.Uint64
	reads   atomic.Uint64
	writes  atomic.Uint64
}

// inflight is one pending physical read. The goroutine that installed
// it performs the store read and publishes the frame (or the error),
// then closes done; every other goroutine that faulted the same page
// in the meantime has registered in waiters and receives an extra pin
// on the published frame.
type inflight struct {
	done    chan struct{}
	frame   *Frame
	err     error
	waiters int
}

// shard is one lock stripe of the pool: an independent frame map with
// its own LRU, in-flight read table and sealed-page set.
type shard struct {
	mu       sync.Mutex
	capacity int
	frames   map[PageKey]*Frame
	lru      *list.List // front = most recently used; only unpinned frames
	reading  map[PageKey]*inflight
	// sealed records every page known to hold a sealed (checksummed)
	// image on its backing store: pages this shard wrote back plus
	// pages recovery proved to hold committed data (MarkSealed). A
	// verified read of such a page that comes back all-zero/unsealed is
	// corruption (zeroed rot), not a fresh page — without this record
	// the zeroed image would be indistinguishable from a page that was
	// never written.
	sealed map[PageKey]struct{}
	stats  shardStats
}

// Pool is the buffer pool.
type Pool struct {
	shards []*shard
	mask   uint64 // len(shards)-1; len is a power of two

	storesMu sync.RWMutex
	stores   map[segment.ID]segment.Store

	// FlushHook, when set, runs before a dirty frame is written back;
	// the WAL uses it to enforce the write-ahead rule. It is invoked
	// under the owning shard's lock (never under any global pool lock)
	// with the frame's LSN, which is stable at that point: the frame is
	// unpinned or being flushed under the engine's exclusive statement
	// lock, so no mutator can advance its LSN concurrently. Lock
	// ordering: shard lock ≺ log mutex; the hook must not call back
	// into the pool.
	FlushHook func(key PageKey, lsn uint64) error
}

// minFramesPerShard bounds how thin sharding may slice a pool: below
// this many frames per shard the stripes are so small that eviction
// behavior would visibly diverge from a unified pool (and tiny test
// pools would change semantics), so small pools stay single-shard.
const minFramesPerShard = 8

// maxShards caps the stripe count; past ~16 stripes the shard mutexes
// stop being a measurable contention point for any realistic core
// count this prototype targets.
const maxShards = 16

// NewPool creates a pool with room for capacity pages, striped over a
// shard count derived from the capacity (single shard for small
// pools, up to maxShards for large ones).
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	shards := 1
	for shards*2 <= maxShards && capacity/(shards*2) >= minFramesPerShard {
		shards *= 2
	}
	return NewPoolShards(capacity, shards)
}

// NewPoolShards creates a pool with an explicit shard count (rounded
// down to a power of two, minimum 1). Total capacity is split evenly;
// every shard gets at least one frame, so the effective capacity is
// rounded up to a multiple of the shard count.
func NewPoolShards(capacity, shards int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	// Round down to a power of two so shardOf can mask.
	for shards&(shards-1) != 0 {
		shards &= shards - 1
	}
	perShard := (capacity + shards - 1) / shards
	p := &Pool{
		shards: make([]*shard, shards),
		mask:   uint64(shards - 1),
		stores: make(map[segment.ID]segment.Store),
	}
	for i := range p.shards {
		p.shards[i] = &shard{
			capacity: perShard,
			frames:   make(map[PageKey]*Frame),
			lru:      list.New(),
			reading:  make(map[PageKey]*inflight),
			sealed:   make(map[PageKey]struct{}),
		}
	}
	return p
}

// shardOf maps a page key to its stripe.
func (p *Pool) shardOf(key PageKey) *shard { return p.shards[p.ShardIndex(key)] }

// ShardCount returns the number of lock stripes.
func (p *Pool) ShardCount() int { return len(p.shards) }

// ShardIndex returns the stripe a page key maps to; the property
// tests use it to replay per-shard traces against a reference model.
func (p *Pool) ShardIndex(key PageKey) int {
	h := uint64(key.Page)<<16 | uint64(key.Seg)
	h *= 0x9E3779B97F4A7C15 // Fibonacci hashing: spread low-entropy keys
	return int((h >> 47) & p.mask)
}

// Register attaches a segment store to the pool under the given id.
func (p *Pool) Register(id segment.ID, st segment.Store) {
	p.storesMu.Lock()
	defer p.storesMu.Unlock()
	p.stores[id] = st
}

// Store returns the registered store for a segment.
func (p *Pool) Store(id segment.ID) segment.Store {
	p.storesMu.RLock()
	defer p.storesMu.RUnlock()
	return p.stores[id]
}

// Stats returns a snapshot of the access counters, merged across
// shards without taking any lock.
func (p *Pool) Stats() Stats {
	var s Stats
	for _, sh := range p.shards {
		s.Fetches += sh.stats.fetches.Load()
		s.Hits += sh.stats.hits.Load()
		s.Reads += sh.stats.reads.Load()
		s.Writes += sh.stats.writes.Load()
	}
	return s
}

// ResetStats zeroes the access counters.
func (p *Pool) ResetStats() {
	for _, sh := range p.shards {
		sh.stats.fetches.Store(0)
		sh.stats.hits.Store(0)
		sh.stats.reads.Store(0)
		sh.stats.writes.Store(0)
	}
}

// Allocate reserves a fresh page in the segment and returns its
// number. The page is not formatted; callers Pin it and Init the
// page view.
func (p *Pool) Allocate(id segment.ID) (uint32, error) {
	st := p.Store(id)
	if st == nil {
		return 0, fmt.Errorf("buffer: segment %d not registered", id)
	}
	return st.Allocate(), nil
}

// ErrCorrupt reports a page image that failed checksum verification
// when read from its backing store — the signature of a torn write at
// a crash, of bit rot, or of a lost or misdirected write. It wraps the
// cross-layer dberr.ErrCorrupt sentinel, so errors.Is classifies it as
// corruption anywhere in the stack. Recovery reformats such pages and
// rebuilds them from the log; outside recovery the engine quarantines
// the object that needed the page.
var ErrCorrupt = fmt.Errorf("buffer: page failed verification: %w", dberr.ErrCorrupt)

// Pin fetches the page into a frame and pins it. Every Pin must be
// matched by an Unpin.
func (p *Pool) Pin(key PageKey) (*Frame, error) { return p.pin(key, true) }

// PinNoVerify is Pin without checksum verification on the physical
// read. Only crash recovery uses it: a torn page must still be loaded
// so it can be reformatted and rebuilt from the log.
func (p *Pool) PinNoVerify(key PageKey) (*Frame, error) { return p.pin(key, false) }

func (p *Pool) pin(key PageKey, verify bool) (*Frame, error) {
	sh := p.shardOf(key)
	sh.stats.fetches.Add(1)
	sh.mu.Lock()
	if f, ok := sh.frames[key]; ok {
		sh.stats.hits.Add(1)
		if f.lru != nil {
			sh.lru.Remove(f.lru)
			f.lru = nil
		}
		f.pins++
		sh.mu.Unlock()
		return f, nil
	}
	if fl, ok := sh.reading[key]; ok {
		// Another goroutine is already reading this page: join its
		// read instead of issuing a second one. The reader pins the
		// published frame once per registered waiter, so the frame
		// cannot be evicted between publish and wake-up.
		fl.waiters++
		sh.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		sh.stats.hits.Add(1)
		return fl.frame, nil
	}
	st := p.Store(key.Seg)
	if st == nil {
		sh.mu.Unlock()
		return nil, fmt.Errorf("buffer: segment %d not registered", key.Seg)
	}
	f, err := p.freeFrameLocked(sh)
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	fl := &inflight{done: make(chan struct{})}
	sh.reading[key] = fl
	_, wasSealed := sh.sealed[key]
	sh.stats.reads.Add(1)
	sh.mu.Unlock()

	// The physical read runs outside the shard lock: pins of other
	// pages in this shard proceed while the store is busy.
	err = st.ReadPage(key.Page, f.buf)
	if err == nil && verify {
		switch {
		case !f.Page.ChecksumOK(uint16(key.Seg), key.Page):
			err = fmt.Errorf("%w: checksum mismatch at %v.%d", ErrCorrupt, key.Seg, key.Page)
		case wasSealed && !f.Page.Sealed():
			// The image passed ChecksumOK only because it is all zeros —
			// but this page was sealed before, so its content was lost.
			err = fmt.Errorf("%w: sealed page %v.%d reads back all-zero", ErrCorrupt, key.Seg, key.Page)
		}
	}

	sh.mu.Lock()
	delete(sh.reading, key)
	if err != nil {
		// The frame is simply dropped (it was never in sh.frames); the
		// waiters all see this error, and a later Pin starts a fresh
		// read — a transient fault is not replayed to them K times.
		fl.err = err
		sh.mu.Unlock()
		close(fl.done)
		return nil, err
	}
	f.Key = key
	f.pins = 1 + fl.waiters
	f.dirty = false
	sh.frames[key] = f
	fl.frame = f
	sh.mu.Unlock()
	close(fl.done)
	return f, nil
}

// PinNew pins a freshly allocated page and initializes it as an empty
// slotted page, skipping the physical read.
func (p *Pool) PinNew(key PageKey) (*Frame, error) {
	sh := p.shardOf(key)
	sh.stats.fetches.Add(1)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.frames[key]; ok {
		return nil, fmt.Errorf("buffer: PinNew of already-buffered page %v", key)
	}
	if _, ok := sh.reading[key]; ok {
		return nil, fmt.Errorf("buffer: PinNew of page %v with a read in flight", key)
	}
	f, err := p.freeFrameLocked(sh)
	if err != nil {
		return nil, err
	}
	f.Key = key
	f.pins = 1
	f.dirty = true
	f.Page.Init()
	sh.frames[key] = f
	return f, nil
}

// Unpin releases one pin; dirty marks the frame as modified.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	sh := p.shardOf(f.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins < 0 {
		// Deliberately a panic, not an error: an unbalanced unpin is a
		// programming bug in a caller's pin/unpin pairing, never a
		// runtime condition a statement could recover from — and by the
		// time it fires the frame accounting is already wrong. The
		// engine's statement-abort path recovers such panics, fails the
		// statement, and rebuilds the pool, so a bug here degrades to a
		// failed statement instead of a dead process.
		panic("buffer: unpin of unpinned frame")
	}
	if f.pins == 0 {
		f.lru = sh.lru.PushFront(f)
	}
}

// freeFrameLocked finds or evicts a frame in sh; sh.mu is held.
// In-flight reads count against the shard's capacity — their frames
// are reserved even though they are not yet in sh.frames.
func (p *Pool) freeFrameLocked(sh *shard) (*Frame, error) {
	if len(sh.frames)+len(sh.reading) < sh.capacity {
		buf := make([]byte, page.Size)
		return &Frame{buf: buf, Page: page.View(buf)}, nil
	}
	// Evict the least recently used unpinned frame.
	el := sh.lru.Back()
	if el == nil {
		return nil, fmt.Errorf("buffer: pool exhausted (%d frames, all pinned)", sh.capacity)
	}
	victim := el.Value.(*Frame)
	sh.lru.Remove(el)
	victim.lru = nil
	if victim.dirty {
		if err := p.writeBackLocked(sh, victim); err != nil {
			// Put the victim back on the LRU: it is still a valid
			// buffered page. Leaving it off the list while it stays in
			// sh.frames would make it unevictable forever, shrinking the
			// pool by one frame per failed write-back.
			victim.lru = sh.lru.PushBack(victim)
			return nil, err
		}
	}
	delete(sh.frames, victim.Key)
	return victim, nil
}

func (p *Pool) writeBackLocked(sh *shard, f *Frame) error {
	if p.FlushHook != nil {
		if err := p.FlushHook(f.Key, f.Page.LSN()); err != nil {
			return err
		}
	}
	st := p.Store(f.Key.Seg)
	if st == nil {
		return fmt.Errorf("buffer: segment %d not registered", f.Key.Seg)
	}
	// Seal mutates the page header and WritePage reads the whole image;
	// both must exclude concurrent pinners of the frame. Latch holders
	// never block on a shard mutex, so taking the latch under sh.mu
	// cannot deadlock.
	f.Latch()
	f.Page.Seal(uint16(f.Key.Seg), f.Key.Page)
	sh.stats.writes.Add(1)
	if err := st.WritePage(f.Key.Page, f.buf); err != nil {
		f.Unlatch()
		return err
	}
	f.Unlatch()
	sh.sealed[f.Key] = struct{}{}
	f.dirty = false
	return nil
}

// MarkSealed records that the page's backing store holds (or must
// hold) a sealed image, so an all-zero read of it fails verification.
// Crash recovery calls this for every page it proves to carry
// committed data.
func (p *Pool) MarkSealed(key PageKey) {
	sh := p.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.sealed[key] = struct{}{}
}

// FlushAll writes back every dirty frame (pinned or not) and syncs
// all stores. Used at commit, checkpoint and shutdown; callers
// serialize it against mutators (the engine holds the exclusive
// statement lock), so locking one shard at a time is a consistent
// flush.
func (p *Pool) FlushAll() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.dirty {
				if err := p.writeBackLocked(sh, f); err != nil {
					sh.mu.Unlock()
					return err
				}
			}
		}
		sh.mu.Unlock()
	}
	p.storesMu.RLock()
	defer p.storesMu.RUnlock()
	for _, st := range p.stores {
		if err := st.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// InvalidateAll drops every frame without writing back, including
// pinned ones (their pin counts are abandoned). Crash-simulation
// tests use it to model losing the page cache; the engine's
// statement-abort path uses it to discard an aborted statement's
// buffered effects — and any pins leaked by a recovered panic —
// before rebuilding the committed state from the log. Callers hold
// the exclusive statement lock, so no reads are in flight.
func (p *Pool) InvalidateAll() {
	for _, sh := range p.shards {
		sh.mu.Lock()
		sh.frames = make(map[PageKey]*Frame)
		sh.lru.Init()
		sh.mu.Unlock()
	}
}

// PinnedCount returns the number of currently pinned frames; tests
// use it to verify that error and cancellation paths release every
// page.
func (p *Pool) PinnedCount() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.pins > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
