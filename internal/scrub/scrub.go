// Package scrub implements the online structural scrubber: a
// read-only audit that walks every durable page, every catalog entry,
// every object directory, every complex object's Mini-Directory tree,
// every flat tuple, and every index, cross-checking each layer
// against the layers below and reporting a typed finding per fault.
//
// The scrubber never repairs anything itself; it observes. With
// Options.Quarantine set it records broken objects in the engine's
// quarantine set (so later reads fail fast with a typed error instead
// of re-visiting rot) and takes diverging indexes out of service —
// both containment actions, not repairs. aimdoctor drives the actual
// repair using the scrubber's report.
package scrub

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/textindex"
)

// Kind classifies a finding by the cross-check that produced it.
type Kind string

// The scrubber's finding kinds, one per cross-check.
const (
	// PageChecksum: a durable page image fails its identity-bound
	// checksum (bit rot, torn write, or a misdirected write carrying
	// another page's identity).
	PageChecksum Kind = "page-checksum"
	// PageStructure: the page checksums correctly but its slot
	// directory or free-space bounds are inconsistent (software fault
	// sealed into the page).
	PageStructure Kind = "page-structure"
	// PageLSN: the page carries an LSN beyond the end of the log —
	// an impossible future write.
	PageLSN Kind = "page-lsn"
	// Directory: a chunk of a table's object directory cannot be read
	// or decoded.
	Directory Kind = "directory"
	// Object: a complex object fails to materialize — its Mini-
	// Directory tree, data subtuples, or page list is broken.
	Object Kind = "object"
	// Tuple: a flat table's tuple fails to decode.
	Tuple Kind = "flat-tuple"
	// Schema: a tuple or object materializes but violates its
	// cataloged type.
	Schema Kind = "schema"
	// IndexDiverged: a live value index disagrees with an index
	// freshly rebuilt from base data.
	IndexDiverged Kind = "index-diverged"
	// TextDiverged: a live text index disagrees with a fresh rebuild.
	TextDiverged Kind = "text-index-diverged"
	// IndexDegraded: the index is out of service (it could not be
	// rebuilt at startup, or a prior scrub degraded it).
	IndexDegraded Kind = "index-degraded"
	// IndexUnbuildable: the shadow rebuild itself failed because the
	// base data is corrupt; the live index cannot be cross-checked.
	IndexUnbuildable Kind = "index-unbuildable"
)

// Finding is one detected fault, locating it as precisely as the
// failing cross-check allows.
type Finding struct {
	Kind   Kind   `json:"kind"`
	Seg    uint16 `json:"seg,omitempty"`
	Page   uint32 `json:"page,omitempty"`
	Table  string `json:"table,omitempty"`
	Ref    string `json:"ref,omitempty"`
	Index  string `json:"index,omitempty"`
	Detail string `json:"detail"`
}

// Report is the machine-readable scrub result.
type Report struct {
	Findings []Finding `json:"findings"`
	// Counters prove coverage: what the scrub actually visited.
	PagesScanned   int `json:"pages_scanned"`
	TablesChecked  int `json:"tables_checked"`
	ObjectsChecked int `json:"objects_checked"`
	TuplesChecked  int `json:"tuples_checked"`
	IndexesChecked int `json:"indexes_checked"`
	// Clean is true when no findings were recorded.
	Clean bool `json:"clean"`
}

// Options configures a scrub run.
type Options struct {
	// Quarantine records broken objects in the engine's quarantine set
	// and degrades diverging indexes, so the live engine contains the
	// damage the scrub found. Off = pure observation.
	Quarantine bool
	// SkipIndexes skips the index cross-check (which rebuilds every
	// index from base data and is the most expensive pass).
	SkipIndexes bool
}

// Run audits the database and returns the report. It runs online,
// holding the shared statement lock (queries proceed, mutating
// statements wait), and flushes dirty pages first so the physical
// pass verifies the actual durable images.
func Run(db *engine.DB, opts Options) (*Report, error) {
	r := &Report{}
	var degrade []degradeReq
	err := db.View(func() error {
		if err := db.Checkpoint(); err != nil {
			return fmt.Errorf("scrub: checkpoint before physical pass: %w", err)
		}
		scrubPages(db, r)
		scrubTables(db, opts, r)
		if !opts.SkipIndexes {
			degrade = scrubIndexes(db, opts, r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Degradations are applied after the View: DegradeIndex detaches
	// the live index under the exclusive heal barrier, which cannot be
	// taken while View holds the shared side.
	for _, d := range degrade {
		db.DegradeIndex(d.name, d.reason)
	}
	r.Clean = len(r.Findings) == 0
	return r, nil
}

func (r *Report) add(f Finding) { r.Findings = append(r.Findings, f) }

// scrubPages verifies the durable image of every page of every
// segment: identity-bound checksum, slotted-page structure, and LSN
// bounds against the log.
func scrubPages(db *engine.DB, r *Report) {
	segs := map[segment.ID]bool{catalog.MetaSegment: true}
	for _, t := range db.Tables() {
		segs[t.Seg] = true
	}
	ids := make([]int, 0, len(segs))
	for id := range segs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	end := uint64(0)
	if db.Log() != nil {
		end = db.Log().End()
	}
	buf := make([]byte, page.Size)
	for _, id := range ids {
		st := db.Pool().Store(segment.ID(id))
		if st == nil {
			r.add(Finding{Kind: PageChecksum, Seg: uint16(id), Detail: "segment has no backing store"})
			continue
		}
		for no := uint32(1); no <= st.PageCount(); no++ {
			r.PagesScanned++
			if err := st.ReadPage(no, buf); err != nil {
				r.add(Finding{Kind: PageChecksum, Seg: uint16(id), Page: no,
					Detail: fmt.Sprintf("unreadable: %v", err)})
				continue
			}
			p := page.View(buf)
			if !p.ChecksumOK(uint16(id), no) {
				r.add(Finding{Kind: PageChecksum, Seg: uint16(id), Page: no,
					Detail: "durable image fails identity-bound checksum"})
				continue
			}
			if err := p.Validate(); err != nil {
				r.add(Finding{Kind: PageStructure, Seg: uint16(id), Page: no, Detail: err.Error()})
			}
			if db.Log() != nil && p.LSN() > end {
				r.add(Finding{Kind: PageLSN, Seg: uint16(id), Page: no,
					Detail: fmt.Sprintf("LSN %d beyond log end %d", p.LSN(), end)})
			}
		}
	}
}

// scrubTables materializes every object of every table, cross-checking
// data subtuples against MD trees (complex) and decoded tuples against
// the cataloged schema (both kinds).
func scrubTables(db *engine.DB, opts Options, r *Report) {
	for _, t := range db.Tables() {
		r.TablesChecked++
		if t.Kind == catalog.Flat {
			scrubFlatTable(db, t, opts, r)
			continue
		}
		scrubComplexTable(db, t, opts, r)
	}
}

// scrubFlatTable decodes every stored tuple directly off the subtuple
// store, continuing past per-tuple faults (a table scan would stop at
// the first).
func scrubFlatTable(db *engine.DB, t *catalog.Table, opts Options, r *Report) {
	fs, ok := db.FlatStore(t.Name)
	if !ok {
		r.add(Finding{Kind: Tuple, Table: t.Name, Detail: "flat store not attached"})
		return
	}
	err := fs.Subtuples().Scan(func(tid page.TID, raw []byte) error {
		r.TuplesChecked++
		vals, err := model.DecodeAtoms(raw)
		if err != nil {
			r.add(Finding{Kind: Tuple, Table: t.Name, Ref: tid.String(),
				Detail: fmt.Sprintf("tuple does not decode: %v", err)})
			if opts.Quarantine {
				db.QuarantineObject(t.Name, tid, err)
			}
			return nil // keep scanning the rest of the table
		}
		if len(vals) > len(t.Type.Attrs) {
			r.add(Finding{Kind: Schema, Table: t.Name, Ref: tid.String(),
				Detail: fmt.Sprintf("stored tuple has %d values, schema %d", len(vals), len(t.Type.Attrs))})
			if opts.Quarantine {
				db.QuarantineObject(t.Name, tid,
					fmt.Errorf("scrub: tuple wider than schema"))
			}
			return nil
		}
		for len(vals) < len(t.Type.Attrs) {
			vals = append(vals, model.Null{})
		}
		if err := model.Conform(t.Type, model.Tuple(vals)); err != nil {
			r.add(Finding{Kind: Schema, Table: t.Name, Ref: tid.String(),
				Detail: fmt.Sprintf("tuple violates schema: %v", err)})
		}
		return nil
	})
	if err != nil {
		// A page-level fault aborted the raw scan; the physical pass
		// reports the page, here we record that the table is affected.
		r.add(Finding{Kind: Tuple, Table: t.Name,
			Detail: fmt.Sprintf("table scan aborted: %v", err)})
	}
}

// scrubComplexTable walks the object directory chain and materializes
// every object, including a full Mini-Directory walk (ObjectStats
// visits every MD subtuple and D pointer, so a broken pointer or
// missing data subtuple surfaces even when pruned reads would not
// touch it).
func scrubComplexTable(db *engine.DB, t *catalog.Table, opts Options, r *Report) {
	refs, err := db.Refs(t.Name)
	if err != nil {
		r.add(Finding{Kind: Directory, Table: t.Name,
			Detail: fmt.Sprintf("directory walk failed: %v", err)})
		// Refs quarantines the directory itself when opts mirror the
		// engine guard; nothing more to check without the ref list.
		return
	}
	m, _ := db.Manager(t.Name)
	for _, ref := range refs {
		r.ObjectsChecked++
		tup, err := db.ReadRef(t, ref, 0)
		if err != nil {
			r.add(Finding{Kind: Object, Table: t.Name, Ref: ref.String(),
				Detail: fmt.Sprintf("object does not materialize: %v", err)})
			if opts.Quarantine {
				db.QuarantineObject(t.Name, ref, err)
			}
			continue
		}
		if err := model.Conform(t.Type, tup); err != nil {
			r.add(Finding{Kind: Schema, Table: t.Name, Ref: ref.String(),
				Detail: fmt.Sprintf("object violates schema: %v", err)})
			continue
		}
		if m != nil {
			if _, err := m.ObjectStats(t.Type, ref); err != nil {
				r.add(Finding{Kind: Object, Table: t.Name, Ref: ref.String(),
					Detail: fmt.Sprintf("Mini-Directory walk failed: %v", err)})
				if opts.Quarantine {
					db.QuarantineObject(t.Name, ref, err)
				}
			}
		}
	}
}

// degradeReq is a deferred DegradeIndex call: scrubIndexes runs
// inside a View (shared heal barrier held) and the detach needs the
// exclusive side, so divergent indexes are collected and degraded by
// Run after the View returns.
type degradeReq struct {
	name   string
	reason error
}

// scrubIndexes rebuilds every cataloged index from base data and
// compares it entry-for-entry against the live incarnation; any
// divergence means reads through the index could silently disagree
// with base-table scans. It returns the indexes to degrade (when
// opts.Quarantine is set).
func scrubIndexes(db *engine.DB, opts Options, r *Report) []degradeReq {
	var degrade []degradeReq
	degraded := db.DegradedIndexes()
	for _, t := range db.Tables() {
		for _, def := range db.Catalog().Indexes(t.Name) {
			r.IndexesChecked++
			if reason, down := degraded[def.Name]; down {
				r.add(Finding{Kind: IndexDegraded, Table: t.Name, Index: def.Name, Detail: reason})
				continue
			}
			shadowIx, shadowTi, err := db.BuildShadowIndex(def)
			if err != nil {
				r.add(Finding{Kind: IndexUnbuildable, Table: t.Name, Index: def.Name,
					Detail: fmt.Sprintf("rebuild from base data failed: %v", err)})
				continue
			}
			if def.Text {
				live, ok := db.TextIndexByName(def.Name)
				if !ok {
					r.add(Finding{Kind: TextDiverged, Table: t.Name, Index: def.Name,
						Detail: "live text index missing"})
					continue
				}
				if detail, diverged := diffText(live, shadowTi); diverged {
					r.add(Finding{Kind: TextDiverged, Table: t.Name, Index: def.Name, Detail: detail})
					if opts.Quarantine {
						degrade = append(degrade, degradeReq{def.Name, fmt.Errorf("scrub: %s", detail)})
					}
				}
				continue
			}
			live, ok := db.IndexByName(def.Name)
			if !ok {
				r.add(Finding{Kind: IndexDiverged, Table: t.Name, Index: def.Name,
					Detail: "live index missing"})
				continue
			}
			if detail, diverged := diffIndex(live, shadowIx); diverged {
				r.add(Finding{Kind: IndexDiverged, Table: t.Name, Index: def.Name, Detail: detail})
				if opts.Quarantine {
					degrade = append(degrade, degradeReq{def.Name, fmt.Errorf("scrub: %s", detail)})
				}
			}
		}
	}
	return degrade
}

// flatten serializes a value index into sorted "key/addr" strings.
func flatten(ix *index.Index) []string {
	var out []string
	ix.Tree().Range(nil, nil, func(key []byte, addrs []index.Addr) bool {
		for _, a := range addrs {
			out = append(out, fmt.Sprintf("%x/%v/%v", key, a.TID, a.Path))
		}
		return true
	})
	sort.Strings(out)
	return out
}

// diffIndex compares two value indexes entry-for-entry.
func diffIndex(live, shadow *index.Index) (string, bool) {
	a, b := flatten(live), flatten(shadow)
	if len(a) != len(b) {
		return fmt.Sprintf("live index has %d entries, base data implies %d", len(a), len(b)), true
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("entry mismatch: live %s, expected %s", a[i], b[i]), true
		}
	}
	return "", false
}

// flattenText serializes a text index into sorted "word/addr" strings.
func flattenText(ix *textindex.Index) []string {
	var out []string
	ix.Walk(func(word string, addrs []index.Addr) {
		for _, a := range addrs {
			out = append(out, fmt.Sprintf("%s/%v/%v", word, a.TID, a.Path))
		}
	})
	sort.Strings(out)
	return out
}

// diffText compares two text indexes posting-for-posting.
func diffText(live, shadow *textindex.Index) (string, bool) {
	a, b := flattenText(live), flattenText(shadow)
	if len(a) != len(b) {
		return fmt.Sprintf("live text index has %d postings, base data implies %d", len(a), len(b)), true
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("posting mismatch: live %s, expected %s", a[i], b[i]), true
		}
	}
	return "", false
}
