package scrub

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/page"
	"repro/internal/testdata"
)

func openLoaded(t *testing.T) *engine.DB {
	t.Helper()
	ts := int64(0)
	db, err := engine.Open(engine.Options{Clock: func() int64 { ts++; return ts }})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("DEPARTMENTS", testdata.DepartmentsType(), engine.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range testdata.Departments().Tuples {
		if err := db.Insert("DEPARTMENTS", tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateTable("EMPLOYEES_1NF", testdata.EmployeesType(), engine.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range testdata.Employees().Tuples {
		if err := db.Insert("EMPLOYEES_1NF", tup); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// A healthy database scrubs clean, with coverage counters proving the
// walk actually visited pages, objects and tuples.
func TestScrubCleanDatabase(t *testing.T) {
	db := openLoaded(t)
	if _, err := db.Exec(`CREATE INDEX DNO_IX ON DEPARTMENTS (DNO)`); err != nil {
		t.Fatal(err)
	}
	r, err := Run(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean {
		t.Fatalf("clean database produced findings: %+v", r.Findings)
	}
	if r.PagesScanned == 0 || r.ObjectsChecked == 0 || r.TuplesChecked == 0 || r.IndexesChecked != 1 {
		t.Fatalf("coverage counters: %+v", r)
	}
}

// Flipping bits in a durable page is caught by the physical pass, and
// the object living there by the logical pass.
func TestScrubDetectsBitRot(t *testing.T) {
	db := openLoaded(t)
	tbl, _ := db.Catalog().Table("DEPARTMENTS")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.Pool().Store(tbl.Seg)
	buf := make([]byte, page.Size)
	if err := st.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	buf[100] ^= 0xFF
	if err := st.WritePage(1, buf); err != nil {
		t.Fatal(err)
	}
	// Drop the cached (intact) frame so reads see the rotten image.
	db.Pool().InvalidateAll()

	r, err := Run(db, Options{Quarantine: true, SkipIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, f := range r.Findings {
		kinds = append(kinds, string(f.Kind))
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, string(PageChecksum)) {
		t.Fatalf("no page-checksum finding in %v", r.Findings)
	}
	if len(db.Quarantined()) == 0 && !strings.Contains(joined, string(Directory)) {
		t.Fatalf("bit rot neither quarantined an object nor flagged the directory: %+v", r.Findings)
	}
}

// An index that silently diverges from base data (simulated by
// mutating the live index directly) is caught and degraded.
func TestScrubDetectsIndexDivergence(t *testing.T) {
	db := openLoaded(t)
	if _, err := db.Exec(`CREATE INDEX ENO_IX ON EMPLOYEES_1NF (EMPNO)`); err != nil {
		t.Fatal(err)
	}
	ix, ok := db.IndexByName("ENO_IX")
	if !ok {
		t.Fatal("index missing")
	}
	// Fabricate a divergence: remove one entry behind the engine's back.
	tbl, _ := db.Catalog().Table("EMPLOYEES_1NF")
	refs, err := db.Refs("EMPLOYEES_1NF")
	if err != nil || len(refs) == 0 {
		t.Fatalf("refs: %v %v", refs, err)
	}
	tup, err := db.ReadRef(tbl, refs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.RemoveFlat(refs[0], tup, tbl.Type); err != nil {
		t.Fatal(err)
	}

	r, err := Run(db, Options{Quarantine: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range r.Findings {
		if f.Kind == IndexDiverged && f.Index == "ENO_IX" {
			found = true
		}
	}
	if !found {
		t.Fatalf("divergence not found: %+v", r.Findings)
	}
	if _, live := db.IndexByName("ENO_IX"); live {
		t.Fatal("diverged index still in service after quarantining scrub")
	}
	// The query still answers, via the base table.
	empno := int64(tup[tbl.Type.AttrIndex("EMPNO")].(model.Int))
	got, _, err := db.Query(fmt.Sprintf(`SELECT x.EMPNO FROM x IN EMPLOYEES_1NF WHERE x.EMPNO = %d`, empno))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 1 {
		t.Fatalf("fallback scan returned %d rows", len(got.Tuples))
	}
}
