package subtuple

import (
	"errors"
	"testing"

	"repro/internal/buffer"
	"repro/internal/dberr"
	"repro/internal/segment"
)

// FuzzSubtupleHeader decodes arbitrary bytes as a subtuple record.
// The robustness contract: never panic, never hang, and fail only
// with a classified corruption error (or deliver a payload). The
// store is empty, so any overflow-chain reference is dangling and
// must classify as corruption too.
func FuzzSubtupleHeader(f *testing.F) {
	pool := buffer.NewPool(16)
	pool.Register(segment.ID(7), segment.NewMemStore())
	s := New(Config{Pool: pool, Seg: segment.ID(7)})

	f.Add([]byte{})
	f.Add([]byte{0x00, 'h', 'i'})
	f.Add([]byte{fVer, 0x02, 1, 0, 0, 0, 0, 0})
	f.Add([]byte{fLong, 0x10, 1, 0, 0, 0, 0, 0})
	f.Add([]byte{fVer | fLong, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, rec []byte) {
		d, err := s.decode(rec)
		if err != nil {
			if !dberr.IsCorrupt(err) {
				t.Fatalf("decode failed with unclassified error: %v", err)
			}
			return
		}
		if d == nil {
			t.Fatal("nil decode without error")
		}
	})
}

// FuzzVersionWalk reads arbitrary bytes back through the full
// versioned read path (Insert of a raw record image, then Read /
// ReadAsOf / History): corruption in a version header must surface as
// a classified error or ErrNotFound, never a panic.
func FuzzVersionWalk(f *testing.F) {
	f.Add([]byte{fTomb})
	f.Add([]byte{fVer, 0x04, 0, 0, 0, 0, 0, 0, 'x'})
	f.Add([]byte{fOld, 'p', 'a', 'y'})
	f.Fuzz(func(t *testing.T, rec []byte) {
		pool := buffer.NewPool(16)
		pool.Register(segment.ID(9), segment.NewMemStore())
		var clk int64
		s := New(Config{Pool: pool, Seg: segment.ID(9), Versioned: true,
			Clock: func() int64 { clk++; return clk }})
		// Plant the fuzzed bytes as the raw record image, bypassing the
		// encoder — exactly what bit rot inside a record produces.
		tid, err := s.insertRawAnywhere(rec)
		if err != nil {
			return // record too large to plant; nothing to test
		}
		check := func(err error) {
			if err != nil && !dberr.IsCorrupt(err) && !errors.Is(err, ErrNotFound) {
				t.Fatalf("unclassified error: %v", err)
			}
		}
		_, err = s.Read(tid)
		check(err)
		_, _, err = s.ReadAsOf(tid, 1)
		check(err)
		_, err = s.History(tid)
		check(err)
	})
}
