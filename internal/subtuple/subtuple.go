// Package subtuple implements the AIM-II subtuple manager. A subtuple
// is "the basic storage unit, like a tuple or a record in traditional
// database systems" (§4.1): both data subtuples and MD subtuples of
// complex objects are stored through this layer.
//
// The store provides stable record addresses (TIDs survive growth via
// forwarding stubs), records larger than a page (overflow chains),
// and the time-version support of §5: when a store is versioned,
// updates and deletes keep the previous state reachable through a
// version chain, and ReadAsOf resolves a record as of an instant in
// the past — the machinery behind ASOF queries. This matches the
// paper's note that walk-through-time support lives "at lower system
// levels (subtuple manager)".
package subtuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/dberr"
	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/wal"
)

// Record flag bits (first byte of every stored record).
const (
	fFwd   = 0x01 // body is a 6-byte TID of the relocated record
	fVer   = 0x02 // versioned: varint fromTS + 6-byte prev-version TID
	fTomb  = 0x04 // tombstone of a deleted versioned record
	fLong  = 0x08 // body continues in an overflow chunk chain
	fChunk = 0x10 // this record is an overflow chunk
	fOld   = 0x20 // this record is an old version (not current)
	fMoved = 0x40 // this record is the target of a forwarding stub
)

// maxRecord bounds a single on-page record; larger bodies are split
// into overflow chunks.
const maxRecord = page.Size - 64

// maxLong bounds the declared size of a long (overflow-chained)
// record. Far above anything the engine writes; its job is to keep a
// corrupt length header from driving a giant allocation.
const maxLong = 1 << 30

// ErrNotFound reports a read through a TID that holds no record.
var ErrNotFound = errors.New("subtuple: record not found")

// ErrNotVersioned reports an ASOF read against an unversioned store.
var ErrNotVersioned = errors.New("subtuple: store is not versioned")

// Store manages subtuples within one segment.
type Store struct {
	pool      *buffer.Pool
	seg       segment.ID
	log       *wal.Log
	versioned bool
	clock     func() int64

	mu         sync.Mutex
	hint       uint32   // last page that accepted an insert
	candidates []uint32 // pages known to have reclaimed space

	nDecoded atomic.Uint64 // records decoded since store creation

	// applyTxn/applyTS are the transaction apply context: while a
	// transaction's write set is applied (always under the engine's
	// exclusive apply lock), every version written is stamped with the
	// creator/deleter transaction id and carries the transaction's
	// single commit timestamp instead of a fresh clock reading — the
	// whole transaction becomes visible to snapshot readers atomically,
	// at one instant. Zero means "no transaction": timestamps come from
	// the clock and versions are stamped txn 0.
	applyTxn atomic.Uint64
	applyTS  atomic.Int64
}

// Config configures a Store.
type Config struct {
	Pool *buffer.Pool
	Seg  segment.ID
	Log  *wal.Log // optional write-ahead log
	// Versioned keeps history on update/delete for ASOF reads.
	Versioned bool
	// Clock supplies version timestamps; required when Versioned.
	Clock func() int64
}

// New creates a store over a registered segment.
func New(cfg Config) *Store {
	s := &Store{pool: cfg.Pool, seg: cfg.Seg, log: cfg.Log, versioned: cfg.Versioned, clock: cfg.Clock}
	if s.versioned && s.clock == nil {
		// Deliberately a panic, not an error: this is a construction-time
		// misconfiguration by the embedding code (the engine always
		// supplies a clock), not a condition that can arise from user
		// statements or runtime faults — there is no caller that could
		// meaningfully handle it as an error.
		panic("subtuple: versioned store requires a clock")
	}
	return s
}

// Pool returns the buffer pool the store runs on.
func (s *Store) Pool() *buffer.Pool { return s.pool }

// Segment returns the segment id the store manages.
func (s *Store) Segment() segment.ID { return s.seg }

// Versioned reports whether the store keeps history.
func (s *Store) Versioned() bool { return s.versioned }

// DecodeCount returns the number of subtuple records decoded since
// the store was created. The counter only grows; callers snapshot it
// around a statement to obtain per-statement figures.
func (s *Store) DecodeCount() uint64 { return s.nDecoded.Load() }

// now returns the version timestamp for the current operation: the
// transaction commit timestamp while an apply context is set, a fresh
// clock reading otherwise.
func (s *Store) now() int64 {
	if ts := s.applyTS.Load(); ts != 0 {
		return ts
	}
	return s.clock()
}

// SetApply installs the transaction apply context (see applyTxn).
// Callers must serialize SetApply/ClearApply with all mutating
// operations — the engine does so under its exclusive apply lock.
func (s *Store) SetApply(txn uint64, ts int64) {
	s.applyTxn.Store(txn)
	s.applyTS.Store(ts)
}

// ClearApply removes the transaction apply context.
func (s *Store) ClearApply() {
	s.applyTxn.Store(0)
	s.applyTS.Store(0)
}

// --- low-level page operations, WAL-logged -------------------------

func (s *Store) logAndApply(op wal.Op, pageNo uint32, apply func(p *page.Page) (uint16, error), payload []byte) (uint16, error) {
	key := buffer.PageKey{Seg: s.seg, Page: pageNo}
	f, err := s.pool.Pin(key)
	if err != nil {
		return 0, err
	}
	f.Latch()
	// First modification of a page in a checkpoint era: log a full
	// image of its committed pre-statement state, so bounded recovery
	// can rebuild the page from the checkpoint tail alone if it has to
	// wipe it. A virgin page (nothing ever applied, no slots) needs no
	// image — the wipe reproduces it exactly.
	if s.log != nil && (f.Page.LSN() != 0 || f.Page.NumSlots() != 0) {
		if err := s.log.EnsureImaged(s.seg, pageNo, f.Page.Bytes()); err != nil {
			f.Unlatch()
			s.pool.Unpin(f, false)
			return 0, err
		}
	}
	sl, err := apply(f.Page)
	if err != nil {
		f.Unlatch()
		s.pool.Unpin(f, false)
		return 0, err
	}
	if s.log != nil {
		rec := &wal.Record{Op: op, Seg: s.seg, Page: pageNo, Slot: sl, Payload: payload}
		lsn, err := s.log.Append(rec)
		if err != nil {
			f.Unlatch()
			s.pool.Unpin(f, true)
			return 0, err
		}
		f.Page.SetLSN(lsn)
	}
	f.Unlatch()
	s.pool.Unpin(f, true)
	return sl, nil
}

func (s *Store) pageInsert(pageNo uint32, rec []byte) (uint16, error) {
	return s.logAndApply(wal.OpInsert, pageNo, func(p *page.Page) (uint16, error) {
		return p.Insert(rec)
	}, rec)
}

func (s *Store) pageUpdate(t page.TID, rec []byte) error {
	_, err := s.logAndApply(wal.OpUpdate, t.Page, func(p *page.Page) (uint16, error) {
		return t.Slot, p.Update(t.Slot, rec)
	}, rec)
	return err
}

func (s *Store) pageDelete(t page.TID) error {
	_, err := s.logAndApply(wal.OpDelete, t.Page, func(p *page.Page) (uint16, error) {
		return t.Slot, p.Delete(t.Slot)
	}, nil)
	if err == nil {
		s.noteFreed(t.Page)
	}
	return err
}

func (s *Store) readRaw(t page.TID) ([]byte, error) {
	f, err := s.pool.Pin(buffer.PageKey{Seg: s.seg, Page: t.Page})
	if err != nil {
		return nil, err
	}
	defer s.pool.Unpin(f, false)
	f.RLatch()
	defer f.RUnlatch()
	if !f.Page.Initialized() {
		// An allocated page can never legitimately revert to the
		// uninitialized (all-zero) state: a reference into one means the
		// page was zeroed underneath us, not that the record is absent.
		return nil, dberr.Corruptf("subtuple: reference %v into uninitialized page %d.%d", t, s.seg, t.Page)
	}
	rec, err := f.Page.Read(t.Slot)
	if err != nil {
		return nil, ErrNotFound
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// --- free-space management -----------------------------------------

func (s *Store) noteFreed(pageNo uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.candidates {
		if c == pageNo {
			return
		}
	}
	if len(s.candidates) < 32 {
		s.candidates = append(s.candidates, pageNo)
	}
}

// AllocatePage reserves and formats a fresh page, returning its
// number.
func (s *Store) AllocatePage() (uint32, error) {
	no, err := s.pool.Allocate(s.seg)
	if err != nil {
		return 0, err
	}
	f, err := s.pool.PinNew(buffer.PageKey{Seg: s.seg, Page: no})
	if err != nil {
		return 0, err
	}
	s.pool.Unpin(f, true)
	return no, nil
}

// PageEmpty reports whether a page holds no live records.
func (s *Store) PageEmpty(pageNo uint32) (bool, error) {
	f, err := s.pool.Pin(buffer.PageKey{Seg: s.seg, Page: pageNo})
	if err != nil {
		return false, err
	}
	defer s.pool.Unpin(f, false)
	f.RLatch()
	defer f.RUnlatch()
	return f.Page.Empty(), nil
}

// FreeOnPage returns the free byte count of a page (a logical page
// access, like the paper's page-list scan).
func (s *Store) FreeOnPage(pageNo uint32) (int, error) {
	f, err := s.pool.Pin(buffer.PageKey{Seg: s.seg, Page: pageNo})
	if err != nil {
		return 0, err
	}
	defer s.pool.Unpin(f, false)
	f.RLatch()
	defer f.RUnlatch()
	return f.Page.FreeSpace(), nil
}

// insertRawAnywhere places an encoded record, trying the insert hint
// and reclaimed-space candidates before allocating a new page.
func (s *Store) insertRawAnywhere(rec []byte) (page.TID, error) {
	s.mu.Lock()
	tries := make([]uint32, 0, 8)
	if s.hint != 0 {
		tries = append(tries, s.hint)
	}
	tries = append(tries, s.candidates...)
	s.mu.Unlock()
	for _, pg := range tries {
		slot, err := s.pageInsert(pg, rec)
		if err == nil {
			s.mu.Lock()
			s.hint = pg
			s.mu.Unlock()
			return page.TID{Page: pg, Slot: slot}, nil
		}
		if !errors.Is(err, page.ErrNoSpace) {
			return page.TID{}, err
		}
	}
	pg, err := s.AllocatePage()
	if err != nil {
		return page.TID{}, err
	}
	slot, err := s.pageInsert(pg, rec)
	if err != nil {
		return page.TID{}, err
	}
	s.mu.Lock()
	s.hint = pg
	s.mu.Unlock()
	return page.TID{Page: pg, Slot: slot}, nil
}

// --- record encoding ------------------------------------------------

// encodeBody wraps a payload with version header and, when too large,
// spills it into an overflow chain. extraFlags is fOld for version
// records. txn is the creating (or, for tombstones, deleting)
// transaction id stamped into the version header; 0 for writes
// outside any transaction.
func (s *Store) encodeBody(payload []byte, versioned bool, fromTS int64, txn uint64, prev page.TID, extraFlags byte) ([]byte, error) {
	hdr := []byte{extraFlags}
	if versioned {
		hdr[0] |= fVer
		hdr = binary.AppendVarint(hdr, fromTS)
		hdr = binary.AppendUvarint(hdr, txn)
		hdr = page.AppendTID(hdr, prev)
	}
	if len(hdr)+len(payload) <= maxRecord {
		return append(hdr, payload...), nil
	}
	// Long record: spill the payload into chunks, newest-first so each
	// chunk can point at the next.
	chunkData := maxRecord - 1 - page.EncodedTIDLen
	next := page.TID{}
	for off := ((len(payload) - 1) / chunkData) * chunkData; off >= 0; off -= chunkData {
		end := off + chunkData
		if end > len(payload) {
			end = len(payload)
		}
		chunk := []byte{fChunk}
		chunk = page.AppendTID(chunk, next)
		chunk = append(chunk, payload[off:end]...)
		t, err := s.insertRawAnywhere(chunk)
		if err != nil {
			return nil, err
		}
		next = t
	}
	hdr[0] |= fLong
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	hdr = page.AppendTID(hdr, next)
	return hdr, nil
}

// decoded is a parsed record.
type decoded struct {
	flags   byte
	fromTS  int64
	txn     uint64 // creator (tombstones: deleter) transaction id
	prev    page.TID
	payload []byte // assembled (chunks resolved)
}

func (s *Store) decode(rec []byte) (*decoded, error) {
	if len(rec) == 0 {
		return nil, dberr.Corruptf("subtuple: empty record")
	}
	s.nDecoded.Add(1)
	d := &decoded{flags: rec[0]}
	p := rec[1:]
	if d.flags&fVer != 0 {
		ts, n := binary.Varint(p)
		if n <= 0 {
			return nil, dberr.Corruptf("subtuple: corrupt version header")
		}
		d.fromTS = ts
		p = p[n:]
		txn, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, dberr.Corruptf("subtuple: corrupt version header")
		}
		d.txn = txn
		p = p[n:]
		prev, err := page.DecodeTID(p)
		if err != nil {
			return nil, err
		}
		d.prev = prev
		p = p[page.EncodedTIDLen:]
	}
	if d.flags&fLong != 0 {
		total, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, dberr.Corruptf("subtuple: corrupt long header")
		}
		p = p[n:]
		first, err := page.DecodeTID(p)
		if err != nil {
			return nil, err
		}
		if total > maxLong {
			return nil, dberr.Corruptf("subtuple: long record declares %d bytes", total)
		}
		payload := make([]byte, 0, total)
		cur := first
		for !cur.Nil() {
			raw, err := s.readRaw(cur)
			if err != nil {
				// A dangling chunk reference is lost data regardless of
				// how the read failed (missing record, unallocated page).
				if dberr.IsCorrupt(err) {
					return nil, fmt.Errorf("subtuple: broken overflow chain: %w", err)
				}
				return nil, dberr.Corruptf("subtuple: broken overflow chain: %v", err)
			}
			if len(raw) <= 1+page.EncodedTIDLen || raw[0]&fChunk == 0 {
				return nil, dberr.Corruptf("subtuple: overflow chain hit non-chunk record")
			}
			next, err := page.DecodeTID(raw[1:])
			if err != nil {
				return nil, err
			}
			payload = append(payload, raw[1+page.EncodedTIDLen:]...)
			// Chunks are non-empty, so this also bounds a cyclic chain.
			if uint64(len(payload)) > total {
				return nil, dberr.Corruptf("subtuple: overflow chain exceeds declared length %d", total)
			}
			cur = next
		}
		if uint64(len(payload)) != total {
			return nil, dberr.Corruptf("subtuple: overflow chain length %d, want %d", len(payload), total)
		}
		d.payload = payload
		return d, nil
	}
	d.payload = p
	return d, nil
}

// freeOverflow releases the chunks of a long record.
func (s *Store) freeOverflow(rec []byte) error {
	if len(rec) == 0 || rec[0]&fLong == 0 {
		return nil
	}
	p := rec[1:]
	if rec[0]&fVer != 0 {
		_, n := binary.Varint(p)
		p = p[n:]
		_, n = binary.Uvarint(p) // txn stamp
		p = p[n+page.EncodedTIDLen:]
	}
	_, n := binary.Uvarint(p)
	p = p[n:]
	cur, err := page.DecodeTID(p)
	if err != nil {
		return err
	}
	for !cur.Nil() {
		raw, err := s.readRaw(cur)
		if err != nil {
			return err
		}
		next, err := page.DecodeTID(raw[1:])
		if err != nil {
			return err
		}
		if err := s.pageDelete(cur); err != nil {
			return err
		}
		cur = next
	}
	return nil
}

// readPrev reads one step of a version chain. A previous version that
// cannot be read is lost history — classified corruption, whatever
// shape the underlying failure takes.
func (s *Store) readPrev(t page.TID) (*decoded, error) {
	raw, err := s.readRaw(t)
	if err != nil {
		if dberr.IsCorrupt(err) {
			return nil, fmt.Errorf("subtuple: broken version chain: %w", err)
		}
		return nil, dberr.Corruptf("subtuple: broken version chain: %v", err)
	}
	return s.decode(raw)
}

// resolve follows forwarding stubs from the anchor and returns the
// physical location plus the raw record found there.
func (s *Store) resolve(t page.TID) (page.TID, []byte, error) {
	for hop := 0; ; hop++ {
		raw, err := s.readRaw(t)
		if err != nil {
			// The anchor may simply not exist (caller's problem), but a
			// forwarding stub promised a record at t: any failure past
			// hop 0 is a broken forwarding chain, i.e. corruption.
			if hop > 0 && !dberr.IsCorrupt(err) && !errors.Is(err, ErrNotFound) {
				return page.TID{}, nil, dberr.Corruptf("subtuple: broken forwarding chain at %v: %v", t, err)
			}
			return page.TID{}, nil, err
		}
		if len(raw) == 0 {
			return page.TID{}, nil, dberr.Corruptf("subtuple: empty record at %v", t)
		}
		if raw[0]&fFwd == 0 {
			return t, raw, nil
		}
		if hop > 8 {
			return page.TID{}, nil, dberr.Corruptf("subtuple: forwarding loop at %v", t)
		}
		next, err := page.DecodeTID(raw[1:])
		if err != nil {
			return page.TID{}, nil, dberr.Corruptf("subtuple: corrupt forwarding stub at %v: %v", t, err)
		}
		t = next
	}
}

// --- public record operations ---------------------------------------

// Insert stores a new subtuple anywhere in the segment and returns
// its stable TID.
func (s *Store) Insert(data []byte) (page.TID, error) {
	rec, err := s.encodeBody(data, s.versioned, s.tsOrZero(), s.applyTxn.Load(), page.TID{}, 0)
	if err != nil {
		return page.TID{}, err
	}
	return s.insertRawAnywhere(rec)
}

func (s *Store) tsOrZero() int64 {
	if s.versioned {
		return s.now()
	}
	return 0
}

// InsertOnPage stores a new subtuple on the given page, returning
// page.ErrNoSpace when it does not fit — the primitive behind the
// complex-object clustering strategy of §4.1 (try the object's own
// pages first).
func (s *Store) InsertOnPage(pageNo uint32, data []byte) (page.TID, error) {
	rec, err := s.encodeBody(data, s.versioned, s.tsOrZero(), s.applyTxn.Load(), page.TID{}, 0)
	if err != nil {
		return page.TID{}, err
	}
	slot, err := s.pageInsert(pageNo, rec)
	if err != nil {
		return page.TID{}, err
	}
	return page.TID{Page: pageNo, Slot: slot}, nil
}

// Read returns the current payload of the subtuple.
func (s *Store) Read(t page.TID) ([]byte, error) {
	_, raw, err := s.resolve(t)
	if err != nil {
		return nil, err
	}
	d, err := s.decode(raw)
	if err != nil {
		return nil, err
	}
	if d.flags&fTomb != 0 {
		return nil, ErrNotFound
	}
	return d.payload, nil
}

// ReadAsOf returns the payload of the subtuple as of instant ts. The
// boolean reports whether the subtuple existed at that time.
func (s *Store) ReadAsOf(t page.TID, ts int64) ([]byte, bool, error) {
	_, raw, err := s.resolve(t)
	if err != nil {
		return nil, false, err
	}
	d, err := s.decode(raw)
	if err != nil {
		return nil, false, err
	}
	if d.flags&fVer == 0 {
		if d.flags&fTomb != 0 {
			return nil, false, nil
		}
		return d.payload, true, nil
	}
	seen := make(map[page.TID]bool)
	for {
		if d.fromTS <= ts {
			if d.flags&fTomb != 0 {
				return nil, false, nil
			}
			return d.payload, true, nil
		}
		if d.prev.Nil() {
			return nil, false, nil // did not exist yet
		}
		if seen[d.prev] {
			return nil, false, dberr.Corruptf("subtuple: version chain cycle at %v", d.prev)
		}
		seen[d.prev] = true
		d, err = s.readPrev(d.prev)
		if err != nil {
			return nil, false, err
		}
	}
}

// Update replaces the subtuple's payload. The TID stays valid: if the
// grown record no longer fits on its page it is relocated and a
// forwarding stub is left behind. In a versioned store the previous
// payload is preserved as an old version.
func (s *Store) Update(t page.TID, data []byte) error {
	loc, raw, err := s.resolve(t)
	if err != nil {
		return err
	}
	old, err := s.decode(raw)
	if err != nil {
		return err
	}
	if old.flags&fTomb != 0 {
		return ErrNotFound
	}
	prev := page.TID{}
	fromTS := int64(0)
	if s.versioned {
		// Preserve the old payload as an fOld version record, keeping
		// its original creator transaction stamp.
		oldRec, err := s.encodeBody(old.payload, true, old.fromTS, old.txn, old.prev, fOld)
		if err != nil {
			return err
		}
		prev, err = s.insertRawAnywhere(oldRec)
		if err != nil {
			return err
		}
		fromTS = s.now()
	}
	moved := old.flags & fMoved
	rec, err := s.encodeBody(data, s.versioned, fromTS, s.applyTxn.Load(), prev, moved)
	if err != nil {
		return err
	}
	err = s.pageUpdate(loc, rec)
	if errors.Is(err, page.ErrNoSpace) {
		// Relocate and leave (or retarget) a forwarding stub.
		rec2, err2 := s.encodeBody(data, s.versioned, fromTS, s.applyTxn.Load(), prev, moved|fMoved)
		if err2 != nil {
			return err2
		}
		nt, err2 := s.insertRawAnywhere(rec2)
		if err2 != nil {
			return err2
		}
		stub := page.AppendTID([]byte{fFwd}, nt)
		if err2 := s.pageUpdate(loc, stub); err2 != nil {
			return err2
		}
		// The old head's overflow chunks are released only after the new
		// head is in place, narrowing the window in which a concurrent
		// snapshot reader holding the old head bytes could chase freed
		// chunks (the old payload itself lives on in the version record).
		return s.freeOverflow(raw)
	}
	if err != nil {
		return err
	}
	return s.freeOverflow(raw)
}

// Delete removes the subtuple. In a versioned store a tombstone keeps
// the history reachable for ASOF reads; otherwise the record (and any
// forwarding stub or overflow chain) is physically removed.
func (s *Store) Delete(t page.TID) error {
	loc, raw, err := s.resolve(t)
	if err != nil {
		return err
	}
	old, err := s.decode(raw)
	if err != nil {
		return err
	}
	if old.flags&fTomb != 0 {
		return ErrNotFound
	}
	if s.versioned {
		oldRec, err := s.encodeBody(old.payload, true, old.fromTS, old.txn, old.prev, fOld)
		if err != nil {
			return err
		}
		prev, err := s.insertRawAnywhere(oldRec)
		if err != nil {
			return err
		}
		tomb := []byte{fVer | fTomb | (old.flags & fMoved)}
		tomb = binary.AppendVarint(tomb, s.now())
		tomb = binary.AppendUvarint(tomb, s.applyTxn.Load())
		tomb = page.AppendTID(tomb, prev)
		if err := s.pageUpdate(loc, tomb); err != nil {
			return err
		}
		// Free the old head's overflow chain only once the tombstone is
		// in place (the payload survives in the version record).
		return s.freeOverflow(raw)
	}
	if err := s.freeOverflow(raw); err != nil {
		return err
	}
	if loc != t {
		if err := s.pageDelete(t); err != nil { // the stub
			return err
		}
	}
	return s.pageDelete(loc)
}

// PageCount returns the number of allocated pages in the segment.
func (s *Store) PageCount() uint32 {
	st := s.pool.Store(s.seg)
	if st == nil {
		return 0
	}
	return st.PageCount()
}

// Exists reports whether the subtuple currently exists.
func (s *Store) Exists(t page.TID) bool {
	_, err := s.Read(t)
	return err == nil
}

// Scan streams every current subtuple in the segment exactly once,
// under its anchor TID for records that were never moved and under
// the physical TID for moved ones (the anchor resolves to the same
// record).
func (s *Store) Scan(fn func(t page.TID, data []byte) error) error {
	st := s.pool.Store(s.seg)
	if st == nil {
		return fmt.Errorf("subtuple: segment %d not registered", s.seg)
	}
	count := st.PageCount()
	for pg := uint32(1); pg <= count; pg++ {
		f, err := s.pool.Pin(buffer.PageKey{Seg: s.seg, Page: pg})
		if err != nil {
			return err
		}
		f.RLatch()
		if !f.Page.Initialized() {
			// A zeroed allocated page would otherwise scan as "no
			// records" — silent row loss rather than a detected fault.
			f.RUnlatch()
			s.pool.Unpin(f, false)
			return dberr.Corruptf("subtuple: allocated page %d.%d is uninitialized (zeroed?)", s.seg, pg)
		}
		n := f.Page.NumSlots()
		type item struct {
			slot uint16
			raw  []byte
		}
		var items []item
		for sl := 0; sl < n; sl++ {
			rec, err := f.Page.Read(uint16(sl))
			if err != nil {
				continue
			}
			if rec[0]&(fFwd|fChunk|fOld|fTomb) != 0 {
				continue
			}
			cp := make([]byte, len(rec))
			copy(cp, rec)
			items = append(items, item{uint16(sl), cp})
		}
		f.RUnlatch()
		s.pool.Unpin(f, false)
		for _, it := range items {
			d, err := s.decode(it.raw)
			if err != nil {
				return err
			}
			if err := fn(page.TID{Page: pg, Slot: it.slot}, d.payload); err != nil {
				return err
			}
		}
	}
	return nil
}

// Commit appends a commit record and forces the log to stable
// storage. A no-op without a WAL.
func (s *Store) Commit() error {
	if s.log == nil {
		return nil
	}
	if _, err := s.log.Append(&wal.Record{Op: wal.OpCommit}); err != nil {
		return err
	}
	return s.log.Sync()
}

// ScanAsOf streams every subtuple that existed at instant ts with its
// payload as of ts. Unlike Scan it visits tombstoned records (they may
// have been alive at ts) and resolves each through its version chain.
func (s *Store) ScanAsOf(ts int64, fn func(t page.TID, data []byte) error) error {
	st := s.pool.Store(s.seg)
	if st == nil {
		return fmt.Errorf("subtuple: segment %d not registered", s.seg)
	}
	count := st.PageCount()
	for pg := uint32(1); pg <= count; pg++ {
		f, err := s.pool.Pin(buffer.PageKey{Seg: s.seg, Page: pg})
		if err != nil {
			return err
		}
		f.RLatch()
		if !f.Page.Initialized() {
			f.RUnlatch()
			s.pool.Unpin(f, false)
			return dberr.Corruptf("subtuple: allocated page %d.%d is uninitialized (zeroed?)", s.seg, pg)
		}
		n := f.Page.NumSlots()
		var slots []uint16
		for sl := 0; sl < n; sl++ {
			rec, err := f.Page.Read(uint16(sl))
			if err != nil {
				continue
			}
			if rec[0]&(fFwd|fChunk|fOld) != 0 {
				continue
			}
			slots = append(slots, uint16(sl))
		}
		f.RUnlatch()
		s.pool.Unpin(f, false)
		for _, sl := range slots {
			tid := page.TID{Page: pg, Slot: sl}
			data, ok, err := s.ReadAsOf(tid, ts)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := fn(tid, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// Version is one state in a subtuple's history.
type Version struct {
	FromTS  int64
	Txn     uint64 // transaction that created this state (0 = none recorded)
	Payload []byte
	Deleted bool // tombstone: the subtuple did not exist from FromTS on
}

// History returns the subtuple's versions, newest first — the
// "walk-through-time" access the paper supports at the subtuple
// manager level (§5) without exposing it at the language interface.
func (s *Store) History(t page.TID) ([]Version, error) {
	_, raw, err := s.resolve(t)
	if err != nil {
		return nil, err
	}
	d, err := s.decode(raw)
	if err != nil {
		return nil, err
	}
	if d.flags&fVer == 0 {
		return []Version{{Payload: d.payload}}, nil
	}
	var out []Version
	seen := make(map[page.TID]bool)
	for {
		v := Version{FromTS: d.fromTS, Txn: d.txn, Deleted: d.flags&fTomb != 0}
		if !v.Deleted {
			v.Payload = d.payload
		}
		out = append(out, v)
		if d.prev.Nil() {
			return out, nil
		}
		if seen[d.prev] {
			return nil, dberr.Corruptf("subtuple: version chain cycle at %v", d.prev)
		}
		seen[d.prev] = true
		d, err = s.readPrev(d.prev)
		if err != nil {
			return nil, err
		}
	}
}
