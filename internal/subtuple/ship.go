package subtuple

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/wal"
)

// ApplyShipped redoes one record of a shipped, commit-terminated WAL
// group onto the pool's pages — the follower-side streaming analogue
// of Recover's redo pass. The follower applies only groups whose
// terminator (commit or checkpoint) has arrived, so every record here
// is committed: full-page images install at their own LSN (they
// precede the group's operations in stream order) and the page LSN
// proves which records a previous incarnation of the follower already
// applied. Non-page records are ignored.
func ApplyShipped(pool *buffer.Pool, r wal.Record) error {
	switch r.Op {
	case wal.OpInsert, wal.OpUpdate, wal.OpDelete, wal.OpPageImage:
	default:
		return nil
	}
	if err := ensurePage(pool, r.Seg, r.Page); err != nil {
		return err
	}
	f, err := pool.Pin(buffer.PageKey{Seg: r.Seg, Page: r.Page})
	if err != nil {
		return err
	}
	defer pool.Unpin(f, true)
	if r.Op == wal.OpPageImage {
		if len(r.Payload) != page.Size {
			return fmt.Errorf("subtuple: shipped page image %v.%d has %d bytes", r.Seg, r.Page, len(r.Payload))
		}
		if f.Page.LSN() >= r.LSN {
			return nil
		}
		copy(f.Page.Bytes(), r.Payload)
		f.Page.SetLSN(r.LSN)
		return nil
	}
	if f.Page.LSN() >= r.LSN {
		return nil // applied before a follower restart
	}
	switch r.Op {
	case wal.OpInsert:
		if err := f.Page.InsertAt(r.Slot, r.Payload); err != nil {
			return fmt.Errorf("subtuple: apply shipped insert %v.%d.%d: %w", r.Seg, r.Page, r.Slot, err)
		}
	case wal.OpUpdate:
		if err := f.Page.Update(r.Slot, r.Payload); err != nil {
			return fmt.Errorf("subtuple: apply shipped update %v.%d.%d: %w", r.Seg, r.Page, r.Slot, err)
		}
	case wal.OpDelete:
		if err := f.Page.Delete(r.Slot); err != nil {
			return fmt.Errorf("subtuple: apply shipped delete %v.%d.%d: %w", r.Seg, r.Page, r.Slot, err)
		}
	}
	f.Page.SetLSN(r.LSN)
	return nil
}
