package subtuple

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/wal"
)

func newStore(t testing.TB, versioned bool) (*Store, *buffer.Pool) {
	t.Helper()
	pool := buffer.NewPool(64)
	pool.Register(1, segment.NewMemStore())
	var clock func() int64
	if versioned {
		ts := int64(0)
		clock = func() int64 { ts++; return ts }
	}
	return New(Config{Pool: pool, Seg: 1, Versioned: versioned, Clock: clock}), pool
}

func TestInsertReadDelete(t *testing.T) {
	s, _ := newStore(t, false)
	tid, err := s.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(tid)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	if !s.Exists(tid) {
		t.Error("Exists = false")
	}
	if err := s.Delete(tid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(tid); !errors.Is(err, ErrNotFound) {
		t.Errorf("Read after delete = %v", err)
	}
	if err := s.Delete(tid); err == nil {
		t.Error("double delete succeeded")
	}
}

func TestUpdateStableTIDAcrossGrowth(t *testing.T) {
	s, _ := newStore(t, false)
	// Fill one page so growth forces relocation.
	tid, err := s.Insert(bytes.Repeat([]byte("a"), 1000))
	if err != nil {
		t.Fatal(err)
	}
	var fill []page.TID
	for i := 0; i < 2; i++ {
		ft, err := s.Insert(bytes.Repeat([]byte("f"), 1400))
		if err != nil {
			t.Fatal(err)
		}
		fill = append(fill, ft)
	}
	big := bytes.Repeat([]byte("B"), 2500)
	if err := s.Update(tid, big); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(tid) // through the forwarding stub
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("Read after relocating update failed: %v", err)
	}
	// Update again through the stub (re-forwarding path).
	big2 := bytes.Repeat([]byte("C"), 3000)
	if err := s.Update(tid, big2); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Read(tid)
	if !bytes.Equal(got, big2) {
		t.Error("second forwarded update failed")
	}
	for _, ft := range fill {
		if _, err := s.Read(ft); err != nil {
			t.Errorf("filler record lost: %v", err)
		}
	}
	// Delete through the stub removes both.
	if err := s.Delete(tid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(tid); err == nil {
		t.Error("record alive after delete")
	}
}

func TestLongRecords(t *testing.T) {
	s, _ := newStore(t, false)
	payload := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7}, 3000) // 21 KB, ~6 pages
	tid, err := s.Insert(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(tid)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("long record round trip failed: %v", err)
	}
	// Shrink it to a short record, then grow again.
	if err := s.Update(tid, []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Read(tid)
	if string(got) != "short" {
		t.Errorf("after shrink: %q", got)
	}
	payload2 := bytes.Repeat([]byte{9}, 50000)
	if err := s.Update(tid, payload2); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Read(tid)
	if !bytes.Equal(got, payload2) {
		t.Error("after regrow: mismatch")
	}
	if err := s.Delete(tid); err != nil {
		t.Fatal(err)
	}
}

func TestVersionedUpdateASOF(t *testing.T) {
	s, _ := newStore(t, true)          // clock ticks 1, 2, 3, ...
	tid, err := s.Insert([]byte("v1")) // ts=1
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update(tid, []byte("v2")); err != nil { // ts=2
		t.Fatal(err)
	}
	if err := s.Update(tid, []byte("v3")); err != nil { // ts=3
		t.Fatal(err)
	}
	cur, err := s.Read(tid)
	if err != nil || string(cur) != "v3" {
		t.Fatalf("current = %q, %v", cur, err)
	}
	cases := []struct {
		ts    int64
		want  string
		exist bool
	}{
		{0, "", false},
		{1, "v1", true},
		{2, "v2", true},
		{3, "v3", true},
		{99, "v3", true},
	}
	for _, c := range cases {
		got, ok, err := s.ReadAsOf(tid, c.ts)
		if err != nil {
			t.Fatal(err)
		}
		if ok != c.exist || (ok && string(got) != c.want) {
			t.Errorf("ASOF %d = %q, %v; want %q, %v", c.ts, got, ok, c.want, c.exist)
		}
	}
}

func TestVersionedDeleteKeepsHistory(t *testing.T) {
	s, _ := newStore(t, true)
	tid, _ := s.Insert([]byte("alive"))   // ts=1
	if err := s.Delete(tid); err != nil { // ts=2
		t.Fatal(err)
	}
	if _, err := s.Read(tid); !errors.Is(err, ErrNotFound) {
		t.Errorf("Read after versioned delete = %v", err)
	}
	got, ok, err := s.ReadAsOf(tid, 1)
	if err != nil || !ok || string(got) != "alive" {
		t.Errorf("ASOF before delete = %q, %v, %v", got, ok, err)
	}
	_, ok, _ = s.ReadAsOf(tid, 2)
	if ok {
		t.Error("record exists ASOF after delete")
	}
}

func TestScan(t *testing.T) {
	s, _ := newStore(t, false)
	want := map[string]bool{}
	for _, d := range []string{"a", "b", "c", "d"} {
		if _, err := s.Insert([]byte(d)); err != nil {
			t.Fatal(err)
		}
		want[d] = true
	}
	// Delete one, relocate another via growth.
	tids := map[string]page.TID{}
	s2, _ := newStore(t, false)
	for _, d := range []string{"a", "b", "c", "d"} {
		tid, _ := s2.Insert([]byte(d))
		tids[d] = tid
	}
	s2.Delete(tids["b"])
	got := map[string]int{}
	err := s2.Scan(func(t page.TID, data []byte) error {
		got[string(data)]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got["a"] != 1 || got["c"] != 1 || got["d"] != 1 {
		t.Errorf("Scan = %v", got)
	}
}

func TestScanSkipsVersionArtifacts(t *testing.T) {
	s, _ := newStore(t, true)
	tid, _ := s.Insert([]byte("one"))
	s.Update(tid, []byte("two"))
	t2, _ := s.Insert([]byte("gone"))
	s.Delete(t2)
	var seen []string
	s.Scan(func(_ page.TID, data []byte) error {
		seen = append(seen, string(data))
		return nil
	})
	if len(seen) != 1 || seen[0] != "two" {
		t.Errorf("Scan over versioned store = %v, want [two]", seen)
	}
}

func TestInsertOnPageNoSpace(t *testing.T) {
	s, _ := newStore(t, false)
	pg, err := s.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertOnPage(pg, bytes.Repeat([]byte("x"), 3000)); err != nil {
		t.Fatal(err)
	}
	_, err = s.InsertOnPage(pg, bytes.Repeat([]byte("y"), 3000))
	if !errors.Is(err, page.ErrNoSpace) {
		t.Errorf("InsertOnPage on full page = %v, want ErrNoSpace", err)
	}
	free, err := s.FreeOnPage(pg)
	if err != nil || free > page.Size {
		t.Errorf("FreeOnPage = %d, %v", free, err)
	}
}

// Property: random insert/update/delete sequences keep every live
// record readable with its latest content.
func TestStoreOpsQuick(t *testing.T) {
	type op struct {
		Kind byte
		Size uint16
	}
	f := func(ops []op) bool {
		s, _ := newStore(t, false)
		shadow := map[page.TID][]byte{}
		seq := byte(0)
		for _, o := range ops {
			size := int(o.Size % 6000) // crosses the overflow threshold
			switch o.Kind % 3 {
			case 0:
				data := bytes.Repeat([]byte{seq}, size)
				seq++
				tid, err := s.Insert(data)
				if err != nil {
					return false
				}
				shadow[tid] = data
			case 1:
				for tid := range shadow {
					if s.Delete(tid) != nil {
						return false
					}
					delete(shadow, tid)
					break
				}
			case 2:
				for tid := range shadow {
					data := bytes.Repeat([]byte{seq}, size)
					seq++
					if s.Update(tid, data) != nil {
						return false
					}
					shadow[tid] = data
					break
				}
			}
		}
		for tid, want := range shadow {
			got, err := s.Read(tid)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWALRecovery simulates a crash after commit: dirty pages are
// dropped without write-back, then the log is replayed onto the
// stores.
func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	fileStore, err := segment.OpenFileStore(filepath.Join(dir, "seg1"))
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(64)
	pool.Register(1, fileStore)
	s := New(Config{Pool: pool, Seg: 1, Log: log})

	t1, err := s.Insert([]byte("persist me"))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Insert([]byte("update me"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update(t2, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	t3, _ := s.Insert([]byte("delete me"))
	if err := s.Delete(t3); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash: drop all buffered pages without flushing.
	pool.InvalidateAll()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	fileStore.Close()

	// Reopen and recover.
	log2, err := wal.Open(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	fs2, err := segment.OpenFileStore(filepath.Join(dir, "seg1"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	pool2 := buffer.NewPool(64)
	pool2.Register(1, fs2)
	if err := Recover(log2, pool2); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	s2 := New(Config{Pool: pool2, Seg: 1, Log: log2})
	got, err := s2.Read(t1)
	if err != nil || string(got) != "persist me" {
		t.Errorf("t1 after recovery = %q, %v", got, err)
	}
	got, err = s2.Read(t2)
	if err != nil || string(got) != "updated" {
		t.Errorf("t2 after recovery = %q, %v", got, err)
	}
	if _, err := s2.Read(t3); err == nil {
		t.Error("deleted record resurrected by recovery")
	}
}

// TestWALUncommittedTailIgnored checks that operations after the last
// commit are not replayed.
func TestWALUncommittedTailIgnored(t *testing.T) {
	dir := t.TempDir()
	log, _ := wal.Open(filepath.Join(dir, "wal"))
	fs, _ := segment.OpenFileStore(filepath.Join(dir, "seg1"))
	pool := buffer.NewPool(64)
	pool.Register(1, fs)
	s := New(Config{Pool: pool, Seg: 1, Log: log})
	t1, _ := s.Insert([]byte("committed"))
	s.Commit()
	t2, _ := s.Insert([]byte("uncommitted"))
	log.Sync() // durable but not committed
	pool.InvalidateAll()
	log.Close()
	fs.Close()

	log2, _ := wal.Open(filepath.Join(dir, "wal"))
	defer log2.Close()
	fs2, _ := segment.OpenFileStore(filepath.Join(dir, "seg1"))
	defer fs2.Close()
	pool2 := buffer.NewPool(64)
	pool2.Register(1, fs2)
	if err := Recover(log2, pool2); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Pool: pool2, Seg: 1, Log: log2})
	if _, err := s2.Read(t1); err != nil {
		t.Errorf("committed record lost: %v", err)
	}
	if _, err := s2.Read(t2); err == nil {
		t.Error("uncommitted record replayed")
	}
}

// Walk-through-time: the full version history of a subtuple, newest
// first, including the deletion tombstone.
func TestHistoryWalkThroughTime(t *testing.T) {
	s, _ := newStore(t, true)
	tid, _ := s.Insert([]byte("v1"))      // ts=1
	s.Update(tid, []byte("v2"))           // ts=2
	s.Update(tid, []byte("v3"))           // ts=3
	if err := s.Delete(tid); err != nil { // ts=4
		t.Fatal(err)
	}
	hist, err := s.History(tid)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("history length = %d, want 4", len(hist))
	}
	if !hist[0].Deleted || hist[0].FromTS != 4 {
		t.Errorf("newest entry = %+v, want tombstone at ts 4", hist[0])
	}
	for i, want := range []string{"", "v3", "v2", "v1"} {
		if i == 0 {
			continue
		}
		if string(hist[i].Payload) != want || hist[i].Deleted {
			t.Errorf("version %d = %+v, want %q", i, hist[i], want)
		}
	}
	// Interval semantics: version i is valid in [FromTS, predecessor's FromTS).
	for i := 1; i < len(hist); i++ {
		if hist[i].FromTS >= hist[i-1].FromTS {
			t.Errorf("timestamps not strictly decreasing at %d", i)
		}
	}
	// Unversioned stores report a single current version.
	s2, _ := newStore(t, false)
	tid2, _ := s2.Insert([]byte("only"))
	hist2, err := s2.History(tid2)
	if err != nil || len(hist2) != 1 || string(hist2[0].Payload) != "only" {
		t.Errorf("unversioned history = %v, %v", hist2, err)
	}
}

// ScanAsOf reports the set of subtuples as of an instant, including
// tombstoned ones that were alive then and excluding later inserts.
func TestScanAsOf(t *testing.T) {
	s, _ := newStore(t, true)
	t1, _ := s.Insert([]byte("early"))   // ts=1
	t2, _ := s.Insert([]byte("doomed"))  // ts=2
	if err := s.Delete(t2); err != nil { // ts=3
		t.Fatal(err)
	}
	s.Update(t1, []byte("changed")) // ts=4
	s.Insert([]byte("late"))        // ts=5
	snapshot := func(ts int64) map[string]bool {
		got := map[string]bool{}
		if err := s.ScanAsOf(ts, func(_ page.TID, data []byte) error {
			got[string(data)] = true
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	at2 := snapshot(2)
	if !at2["early"] || !at2["doomed"] || len(at2) != 2 {
		t.Errorf("asof 2 = %v", at2)
	}
	at3 := snapshot(3)
	if !at3["early"] || at3["doomed"] || len(at3) != 1 {
		t.Errorf("asof 3 = %v", at3)
	}
	at5 := snapshot(5)
	if !at5["changed"] || !at5["late"] || len(at5) != 2 {
		t.Errorf("asof 5 = %v", at5)
	}
}
