package subtuple

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/page"
)

// Cursor is the pull-based form of Scan/ScanAsOf: it streams every
// current subtuple of the segment one Next at a time, in the same
// order and under the same TIDs as Scan. Pages are pinned only inside
// a single Next call — the cursor buffers the (copied) records of one
// page at a time — so an abandoned cursor holds no buffer resources
// and Close is a plain bookkeeping call.
type Cursor struct {
	s      *Store
	asof   int64
	isAsOf bool // ASOF mode: resolve each record through its version chain

	count  uint32 // segment page count at open
	pg     uint32 // next page to load
	items  []cursorItem
	i      int
	closed bool
}

type cursorItem struct {
	tid page.TID
	raw []byte // current-state mode: copied raw record, decoded on demand
}

// NewCursor opens a cursor over the current state of the segment.
func (s *Store) NewCursor() (*Cursor, error) {
	st := s.pool.Store(s.seg)
	if st == nil {
		return nil, fmt.Errorf("subtuple: segment %d not registered", s.seg)
	}
	return &Cursor{s: s, count: st.PageCount(), pg: 1}, nil
}

// NewAsOfCursor opens a cursor over the segment as of instant ts:
// like ScanAsOf it visits tombstoned records (they may have been alive
// at ts) and resolves each through its version chain.
func (s *Store) NewAsOfCursor(ts int64) (*Cursor, error) {
	c, err := s.NewCursor()
	if err != nil {
		return nil, err
	}
	c.asof, c.isAsOf = ts, true
	return c, nil
}

// Next returns the next subtuple. The boolean is false when the scan
// is exhausted (or the cursor closed); the payload is only valid until
// the next call.
func (c *Cursor) Next() (page.TID, []byte, bool, error) {
	for {
		if c.closed {
			return page.TID{}, nil, false, nil
		}
		for c.i < len(c.items) {
			it := c.items[c.i]
			c.i++
			if c.isAsOf {
				data, ok, err := c.s.ReadAsOf(it.tid, c.asof)
				if err != nil {
					return page.TID{}, nil, false, err
				}
				if !ok {
					continue
				}
				return it.tid, data, true, nil
			}
			d, err := c.s.decode(it.raw)
			if err != nil {
				return page.TID{}, nil, false, err
			}
			return it.tid, d.payload, true, nil
		}
		if c.pg > c.count {
			c.closed = true
			return page.TID{}, nil, false, nil
		}
		if err := c.loadPage(); err != nil {
			return page.TID{}, nil, false, err
		}
	}
}

// loadPage pins the next page, copies out its current records
// (current-state mode) or their slot numbers (ASOF mode), and unpins
// before returning.
func (c *Cursor) loadPage() error {
	pg := c.pg
	c.pg++
	c.items = c.items[:0]
	c.i = 0
	f, err := c.s.pool.Pin(buffer.PageKey{Seg: c.s.seg, Page: pg})
	if err != nil {
		return err
	}
	defer c.s.pool.Unpin(f, false)
	f.RLatch()
	defer f.RUnlatch()
	n := f.Page.NumSlots()
	for sl := 0; sl < n; sl++ {
		rec, err := f.Page.Read(uint16(sl))
		if err != nil {
			continue
		}
		if c.isAsOf {
			if rec[0]&(fFwd|fChunk|fOld) != 0 {
				continue
			}
			c.items = append(c.items, cursorItem{tid: page.TID{Page: pg, Slot: uint16(sl)}})
			continue
		}
		if rec[0]&(fFwd|fChunk|fOld|fTomb) != 0 {
			continue
		}
		cp := make([]byte, len(rec))
		copy(cp, rec)
		c.items = append(c.items, cursorItem{tid: page.TID{Page: pg, Slot: uint16(sl)}, raw: cp})
	}
	return nil
}

// Close releases the cursor. It is idempotent; the cursor holds no
// buffer pages between calls, so this never fails.
func (c *Cursor) Close() error {
	c.closed = true
	c.items = nil
	return nil
}
