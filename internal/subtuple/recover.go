package subtuple

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/segment"
	"repro/internal/wal"
)

// Recover replays the write-ahead log onto the segments registered in
// the pool. Only records up to (and including) the last commit are
// applied; a record is skipped when the target page's LSN shows it
// was already applied before the crash. Afterwards all pages are
// flushed so the log could be truncated by the caller.
func Recover(log *wal.Log, pool *buffer.Pool) error {
	// Pass 1: find the last commit LSN.
	lastCommit := uint64(0)
	haveCommit := false
	err := log.Replay(func(r wal.Record) error {
		if r.Op == wal.OpCommit {
			lastCommit = r.LSN
			haveCommit = true
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !haveCommit {
		return nil // nothing durable to redo
	}
	// Pass 2: redo committed page operations.
	err = log.Replay(func(r wal.Record) error {
		if r.LSN > lastCommit {
			return nil
		}
		switch r.Op {
		case wal.OpInsert, wal.OpUpdate, wal.OpDelete:
		default:
			return nil
		}
		if err := ensurePage(pool, r.Seg, r.Page); err != nil {
			return err
		}
		f, err := pool.Pin(buffer.PageKey{Seg: r.Seg, Page: r.Page})
		if err != nil {
			return err
		}
		defer pool.Unpin(f, true)
		if !f.Page.Initialized() {
			f.Page.Init()
		}
		if f.Page.LSN() >= r.LSN {
			return nil // already applied before the crash
		}
		switch r.Op {
		case wal.OpInsert:
			if err := f.Page.InsertAt(r.Slot, r.Payload); err != nil {
				return fmt.Errorf("subtuple: redo insert %v.%d.%d: %w", r.Seg, r.Page, r.Slot, err)
			}
		case wal.OpUpdate:
			if err := f.Page.Update(r.Slot, r.Payload); err != nil {
				return fmt.Errorf("subtuple: redo update %v.%d.%d: %w", r.Seg, r.Page, r.Slot, err)
			}
		case wal.OpDelete:
			if err := f.Page.Delete(r.Slot); err != nil {
				return fmt.Errorf("subtuple: redo delete %v.%d.%d: %w", r.Seg, r.Page, r.Slot, err)
			}
		}
		f.Page.SetLSN(r.LSN)
		return nil
	})
	if err != nil {
		return err
	}
	return pool.FlushAll()
}

// ensurePage extends the segment until the page exists, formatting
// fresh pages (allocations themselves are not logged; they are
// implied by the first operation touching the page).
func ensurePage(pool *buffer.Pool, seg segment.ID, pageNo uint32) error {
	st := pool.Store(seg)
	if st == nil {
		return fmt.Errorf("subtuple: recovery for unregistered segment %d", seg)
	}
	for st.PageCount() < pageNo {
		no := st.Allocate()
		f, err := pool.PinNew(buffer.PageKey{Seg: seg, Page: no})
		if err != nil {
			return err
		}
		pool.Unpin(f, true)
	}
	return nil
}
