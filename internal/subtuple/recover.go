package subtuple

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/segment"
	"repro/internal/wal"
)

// Recover replays the write-ahead log onto the segments registered in
// the pool. The log is complete — it is never truncated except at the
// torn tail, so it holds the full history of every page since its
// allocation. Recovery exploits that in three passes:
//
//  1. scan the log for the last commit LSN and the set of touched
//     pages;
//  2. wipe every touched page whose stored image cannot be trusted:
//     a failed checksum (torn page write at the crash) or a page LSN
//     beyond the last commit (an uncommitted change stolen to disk by
//     buffer eviction — the redo-only scheme has no undo, so the page
//     is instead rebuilt from scratch);
//  3. redo all committed page operations in log order, skipping
//     records the page LSN proves were already applied.
//
// Afterwards all pages are flushed so the result is durable.
func Recover(log *wal.Log, pool *buffer.Pool) error {
	// Pass 1: last commit LSN and touched pages, in first-use order.
	lastCommit := uint64(0)
	commitEnd := uint64(0) // byte offset just past the last commit record
	var touched []buffer.PageKey
	seen := make(map[buffer.PageKey]bool)
	err := log.Replay(func(r wal.Record) error {
		switch r.Op {
		case wal.OpCommit:
			lastCommit = r.LSN
			commitEnd = (r.LSN - 1) + uint64(r.Size())
		case wal.OpInsert, wal.OpUpdate, wal.OpDelete:
			k := buffer.PageKey{Seg: r.Seg, Page: r.Page}
			if !seen[k] {
				seen[k] = true
				touched = append(touched, k)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Drop the uncommitted tail from the log. Leaving those records in
	// place would be a latent bug: the next statement's commit record
	// lands after them, so a later recovery would replay them as
	// committed, resurrecting the crashed statement's partial effects.
	if err := log.TruncateTail(commitEnd); err != nil {
		return err
	}
	if len(touched) == 0 {
		return nil // empty or control-only log: nothing to redo or undo
	}

	// Pass 2: discard untrustworthy page images. A wiped page is
	// rebuilt below from the full log.
	for _, k := range touched {
		if err := ensurePage(pool, k.Seg, k.Page); err != nil {
			return err
		}
		f, err := pool.PinNoVerify(k)
		if err != nil {
			return err
		}
		if !f.Page.Initialized() || !f.Page.ChecksumOK(uint16(k.Seg), k.Page) || f.Page.LSN() > lastCommit {
			f.Page.Init()
		}
		pool.Unpin(f, true)
	}

	// Pass 3: redo committed page operations.
	err = log.Replay(func(r wal.Record) error {
		if r.LSN > lastCommit {
			return nil
		}
		switch r.Op {
		case wal.OpInsert, wal.OpUpdate, wal.OpDelete:
		default:
			return nil
		}
		f, err := pool.Pin(buffer.PageKey{Seg: r.Seg, Page: r.Page})
		if err != nil {
			return err
		}
		defer pool.Unpin(f, true)
		if f.Page.LSN() >= r.LSN {
			return nil // already applied before the crash
		}
		switch r.Op {
		case wal.OpInsert:
			if err := f.Page.InsertAt(r.Slot, r.Payload); err != nil {
				return fmt.Errorf("subtuple: redo insert %v.%d.%d: %w", r.Seg, r.Page, r.Slot, err)
			}
		case wal.OpUpdate:
			if err := f.Page.Update(r.Slot, r.Payload); err != nil {
				return fmt.Errorf("subtuple: redo update %v.%d.%d: %w", r.Seg, r.Page, r.Slot, err)
			}
		case wal.OpDelete:
			if err := f.Page.Delete(r.Slot); err != nil {
				return fmt.Errorf("subtuple: redo delete %v.%d.%d: %w", r.Seg, r.Page, r.Slot, err)
			}
		}
		f.Page.SetLSN(r.LSN)
		return nil
	})
	if err != nil {
		return err
	}
	return pool.FlushAll()
}

// ensurePage extends the segment until the page exists, formatting
// fresh pages (allocations themselves are not logged; they are
// implied by the first operation touching the page).
func ensurePage(pool *buffer.Pool, seg segment.ID, pageNo uint32) error {
	st := pool.Store(seg)
	if st == nil {
		return fmt.Errorf("subtuple: recovery for unregistered segment %d", seg)
	}
	for st.PageCount() < pageNo {
		no := st.Allocate()
		f, err := pool.PinNew(buffer.PageKey{Seg: seg, Page: no})
		if err != nil {
			return err
		}
		pool.Unpin(f, true)
	}
	return nil
}
