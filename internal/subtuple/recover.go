package subtuple

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/wal"
)

// Recover replays the write-ahead log onto the segments registered in
// the pool. Replay is bounded: it starts at the last complete
// checkpoint record (wal.ReplayTail), because a checkpoint is only
// written after every page state the earlier records describe has
// been flushed. The tail is self-contained for the pages it touches —
// the first modification of a page in a checkpoint era logs a
// full-page image of its committed state — so a page that must be
// wiped can be rebuilt from the tail alone, in three passes:
//
//  1. scan the tail for the last commit horizon (a commit record or
//     the checkpoint itself — a checkpoint is only written when
//     everything before it is committed and durable) and the set of
//     touched pages;
//  2. wipe every touched page whose stored image cannot be trusted:
//     a failed checksum (torn page write at the crash) or a page LSN
//     beyond the last commit (an uncommitted change stolen to disk by
//     buffer eviction — the redo-only scheme has no undo, so the page
//     is instead rebuilt);
//  3. redo the tail in log order: full-page images restore a wiped
//     page's committed base state, then committed page operations
//     apply on top, with the page LSN proving which records already
//     took effect.
//
// Afterwards all pages are flushed, and only then is the uncommitted
// log tail truncated away — truncating first would destroy the very
// images a crash during the flush would need on the next attempt, so
// the order makes recovery idempotent under recovery crashes.
func Recover(log *wal.Log, pool *buffer.Pool) error {
	// Pass 1: last commit horizon and touched pages, in first-use
	// order.
	lastCommit := uint64(0)
	commitEnd := uint64(0) // byte offset just past the last commit/checkpoint record
	var touched []buffer.PageKey
	seen := make(map[buffer.PageKey]bool)
	err := log.ReplayTail(func(r wal.Record) error {
		switch r.Op {
		case wal.OpCommit, wal.OpCheckpoint:
			lastCommit = r.LSN
			commitEnd = (r.LSN - 1) + uint64(r.Size())
		case wal.OpInsert, wal.OpUpdate, wal.OpDelete, wal.OpPageImage:
			k := buffer.PageKey{Seg: r.Seg, Page: r.Page}
			if !seen[k] {
				seen[k] = true
				touched = append(touched, k)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(touched) == 0 {
		// Empty or control-only tail: nothing to redo or undo, just
		// drop any trailing uncommitted bytes.
		return log.TruncateTail(commitEnd)
	}

	// Pass 2: discard untrustworthy page images. A wiped page is
	// rebuilt below from the tail.
	for _, k := range touched {
		if err := ensurePage(pool, k.Seg, k.Page); err != nil {
			return err
		}
		f, err := pool.PinNoVerify(k)
		if err != nil {
			return err
		}
		if !f.Page.Initialized() || !f.Page.ChecksumOK(uint16(k.Seg), k.Page) || f.Page.LSN() > lastCommit {
			f.Page.Init()
		}
		pool.Unpin(f, true)
	}

	// Pass 3: redo the tail.
	err = log.ReplayTail(func(r wal.Record) error {
		switch r.Op {
		case wal.OpInsert, wal.OpUpdate, wal.OpDelete, wal.OpPageImage:
		default:
			return nil
		}
		if r.Op != wal.OpPageImage && r.LSN > lastCommit {
			return nil
		}
		f, err := pool.Pin(buffer.PageKey{Seg: r.Seg, Page: r.Page})
		if err != nil {
			return err
		}
		defer pool.Unpin(f, true)
		if r.Op == wal.OpPageImage {
			// An image always holds committed pre-statement state, even
			// when the statement that logged it never committed — it
			// was captured before the statement changed anything. An
			// uncommitted image therefore restores the page to the
			// commit horizon, never past it.
			if len(r.Payload) != page.Size {
				return fmt.Errorf("subtuple: page image %v.%d has %d bytes", r.Seg, r.Page, len(r.Payload))
			}
			eff := r.LSN
			if eff > lastCommit {
				eff = lastCommit
			}
			if f.Page.LSN() >= eff {
				return nil
			}
			copy(f.Page.Bytes(), r.Payload)
			f.Page.SetLSN(eff)
			return nil
		}
		if f.Page.LSN() >= r.LSN {
			return nil // already applied before the crash
		}
		switch r.Op {
		case wal.OpInsert:
			if err := f.Page.InsertAt(r.Slot, r.Payload); err != nil {
				return fmt.Errorf("subtuple: redo insert %v.%d.%d: %w", r.Seg, r.Page, r.Slot, err)
			}
		case wal.OpUpdate:
			if err := f.Page.Update(r.Slot, r.Payload); err != nil {
				return fmt.Errorf("subtuple: redo update %v.%d.%d: %w", r.Seg, r.Page, r.Slot, err)
			}
		case wal.OpDelete:
			if err := f.Page.Delete(r.Slot); err != nil {
				return fmt.Errorf("subtuple: redo delete %v.%d.%d: %w", r.Seg, r.Page, r.Slot, err)
			}
		}
		f.Page.SetLSN(r.LSN)
		return nil
	})
	if err != nil {
		return err
	}
	if err := pool.FlushAll(); err != nil {
		return err
	}
	// Drop the uncommitted tail from the log — after the flush, see
	// above. Leaving those records in place would be a latent bug: the
	// next statement's commit record lands after them, so a later
	// recovery would replay them as committed, resurrecting the
	// crashed statement's partial effects.
	return log.TruncateTail(commitEnd)
}

// ensurePage extends the segment until the page exists, formatting
// fresh pages (allocations themselves are not logged; they are
// implied by the first operation touching the page).
func ensurePage(pool *buffer.Pool, seg segment.ID, pageNo uint32) error {
	st := pool.Store(seg)
	if st == nil {
		return fmt.Errorf("subtuple: recovery for unregistered segment %d", seg)
	}
	for st.PageCount() < pageNo {
		no := st.Allocate()
		f, err := pool.PinNew(buffer.PageKey{Seg: seg, Page: no})
		if err != nil {
			return err
		}
		pool.Unpin(f, true)
	}
	return nil
}
