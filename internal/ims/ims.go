// Package ims implements a miniature IMS-style hierarchical database
// — the system Fig 1 of the paper uses to contrast the NF² model
// with: segment types in a fixed hierarchy, occurrences stored in
// hierarchic (preorder) sequence, and the navigational DL/I-style
// calls GU (get unique), GN (get next) and GNP (get next within
// parent) /Da81, IBM3/.
//
// The point of this baseline is the programming model: where one NF²
// query retrieves a structured result, the IMS interface forces the
// application to navigate segment by segment with "language
// constructs ... completely different from the high level language
// constructs used in relational database systems" (§2).
package ims

import (
	"fmt"

	"repro/internal/model"
)

// SegmentType is one node of the hierarchy definition (e.g.
// DEPARTMENT with children PROJECT, BUDGET, EQUIP).
type SegmentType struct {
	Name     string
	Fields   []string
	Children []*SegmentType
}

// Find returns the named segment type in this subtree, or nil.
func (st *SegmentType) Find(name string) *SegmentType {
	if st.Name == name {
		return st
	}
	for _, c := range st.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Segment is one stored segment occurrence.
type Segment struct {
	Type   *SegmentType
	Values []model.Value
	// level and parent index into the database's hierarchic sequence.
	level  int
	parent int
}

// Field returns a field value by name.
func (s *Segment) Field(name string) (model.Value, bool) {
	for i, f := range s.Type.Fields {
		if f == name {
			return s.Values[i], true
		}
	}
	return nil, false
}

// DB is a hierarchical database: occurrences in hierarchic sequence
// (the HSAM organization) plus a position cursor per database, as in
// DL/I.
type DB struct {
	root *SegmentType
	seq  []Segment
	pos  int // current position (index of the last retrieved segment)
	par  int // established parentage (set by GU/GN, used by GNP)
}

// New creates an empty hierarchical database for the segment
// hierarchy rooted at root.
func New(root *SegmentType) *DB { return &DB{root: root, pos: -1, par: -1} }

// Root returns the root segment type.
func (db *DB) Root() *SegmentType { return db.root }

// Len returns the number of stored segment occurrences.
func (db *DB) Len() int { return len(db.seq) }

// Insert appends a segment occurrence under the given parent position
// (-1 for root segments). Occurrences must be inserted in hierarchic
// sequence, as in HSAM.
func (db *DB) Insert(typ *SegmentType, parent int, values ...model.Value) (int, error) {
	if len(values) != len(typ.Fields) {
		return 0, fmt.Errorf("ims: segment %s takes %d fields, got %d", typ.Name, len(typ.Fields), len(values))
	}
	level := 0
	if parent >= 0 {
		level = db.seq[parent].level + 1
		ok := false
		for _, c := range db.seq[parent].Type.Children {
			if c == typ {
				ok = true
			}
		}
		if !ok {
			return 0, fmt.Errorf("ims: %s is not a child segment of %s", typ.Name, db.seq[parent].Type.Name)
		}
	} else if typ != db.root {
		return 0, fmt.Errorf("ims: %s is not the root segment type", typ.Name)
	}
	db.seq = append(db.seq, Segment{Type: typ, Values: values, level: level, parent: parent})
	return len(db.seq) - 1, nil
}

// Qual is a segment search argument: segment type name plus an
// optional field=value qualification.
type Qual struct {
	Segment string
	Field   string
	Value   model.Value
}

func (db *DB) matches(i int, q Qual) bool {
	s := &db.seq[i]
	if s.Type.Name != q.Segment {
		return false
	}
	if q.Field == "" {
		return true
	}
	v, ok := s.Field(q.Field)
	return ok && model.AtomEqual(v, q.Value)
}

// GU (get unique) positions at the first segment matching the
// qualification chain from the root and returns it.
func (db *DB) GU(quals ...Qual) (*Segment, error) {
	for i := range db.seq {
		if db.qualChainMatches(i, quals) {
			db.pos, db.par = i, i
			return &db.seq[i], nil
		}
	}
	return nil, fmt.Errorf("ims: GE (not found)")
}

// qualChainMatches checks the last qual against segment i and the
// earlier quals against its ancestors.
func (db *DB) qualChainMatches(i int, quals []Qual) bool {
	if len(quals) == 0 {
		return true
	}
	if !db.matches(i, quals[len(quals)-1]) {
		return false
	}
	anc := db.seq[i].parent
	for q := len(quals) - 2; q >= 0; q-- {
		for anc >= 0 && !db.matches(anc, quals[q]) {
			anc = db.seq[anc].parent
		}
		if anc < 0 {
			return false
		}
		anc = db.seq[anc].parent
	}
	return true
}

// GN (get next) advances through the hierarchic sequence to the next
// segment matching the qualification (any segment when none given).
func (db *DB) GN(quals ...Qual) (*Segment, error) {
	for i := db.pos + 1; i < len(db.seq); i++ {
		if db.qualChainMatches(i, quals) {
			db.pos, db.par = i, i
			return &db.seq[i], nil
		}
	}
	return nil, fmt.Errorf("ims: GB (end of database)")
}

// GNP (get next within parent) advances to the next matching segment
// that is a descendant of the parentage established by the last
// GU/GN; the parentage itself does not move.
func (db *DB) GNP(quals ...Qual) (*Segment, error) {
	if db.par < 0 {
		return nil, fmt.Errorf("ims: no parent position established")
	}
	for i := db.pos + 1; i < len(db.seq); i++ {
		if db.seq[i].level <= db.seq[db.par].level {
			break // left the parent's subtree
		}
		if db.qualChainMatches(i, quals) {
			db.pos = i
			return &db.seq[i], nil
		}
	}
	return nil, fmt.Errorf("ims: GE (no more within parent)")
}

// Parentage returns the current position's parent segment, if any.
func (db *DB) Parentage() (*Segment, bool) {
	if db.pos < 0 || db.seq[db.pos].parent < 0 {
		return nil, false
	}
	return &db.seq[db.seq[db.pos].parent], true
}

// Reset clears the position cursor and parentage.
func (db *DB) Reset() { db.pos, db.par = -1, -1 }
