package ims

import (
	"testing"

	"repro/internal/model"
	"repro/internal/testdata"
)

// Fig 1 hierarchy: DEPARTMENT root with children PROJECT (child
// MEMBER), BUDGET and EQUIP.
func fig1Schema() (*SegmentType, map[string]*SegmentType) {
	member := &SegmentType{Name: "MEMBER", Fields: []string{"EMPNO", "FUNCTION"}}
	project := &SegmentType{Name: "PROJECT", Fields: []string{"PNO", "PNAME"}, Children: []*SegmentType{member}}
	budget := &SegmentType{Name: "BUDGET", Fields: []string{"AMOUNT"}}
	equip := &SegmentType{Name: "EQUIP", Fields: []string{"QU", "TYPE"}}
	dept := &SegmentType{Name: "DEPARTMENT", Fields: []string{"DNO", "MGRNO"}, Children: []*SegmentType{project, budget, equip}}
	return dept, map[string]*SegmentType{
		"DEPARTMENT": dept, "PROJECT": project, "MEMBER": member, "BUDGET": budget, "EQUIP": equip,
	}
}

// LoadFig1 loads Table 5 into the Fig 1 hierarchy in hierarchic
// sequence.
func LoadFig1(t testing.TB) (*DB, map[string]*SegmentType) {
	t.Helper()
	root, types := fig1Schema()
	db := New(root)
	for _, d := range testdata.Departments().Tuples {
		dp, err := db.Insert(types["DEPARTMENT"], -1, d[0], d[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range d[2].(*model.Table).Tuples {
			pp, err := db.Insert(types["PROJECT"], dp, p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range p[2].(*model.Table).Tuples {
				if _, err := db.Insert(types["MEMBER"], pp, m[0], m[1]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := db.Insert(types["BUDGET"], dp, d[3]); err != nil {
			t.Fatal(err)
		}
		for _, e := range d[4].(*model.Table).Tuples {
			if _, err := db.Insert(types["EQUIP"], dp, e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db, types
}

func TestInsertValidation(t *testing.T) {
	root, types := fig1Schema()
	db := New(root)
	if _, err := db.Insert(types["PROJECT"], -1, model.Int(1), model.Str("X")); err == nil {
		t.Error("non-root segment accepted at root")
	}
	dp, _ := db.Insert(types["DEPARTMENT"], -1, model.Int(1), model.Int(2))
	if _, err := db.Insert(types["MEMBER"], dp, model.Int(1), model.Str("F")); err == nil {
		t.Error("MEMBER accepted directly under DEPARTMENT")
	}
	if _, err := db.Insert(types["PROJECT"], dp, model.Int(1)); err == nil {
		t.Error("wrong field count accepted")
	}
}

func TestGUAndGN(t *testing.T) {
	db, _ := LoadFig1(t)
	// GU with a qualified SSA chain: department 314's project 23.
	seg, err := db.GU(
		Qual{Segment: "DEPARTMENT", Field: "DNO", Value: model.Int(314)},
		Qual{Segment: "PROJECT", Field: "PNO", Value: model.Int(23)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := seg.Field("PNAME"); v.(model.Str) != "HEAP" {
		t.Errorf("PNAME = %v", v)
	}
	// GN without qualification walks the hierarchic sequence.
	db.Reset()
	count := 0
	for {
		if _, err := db.GN(); err != nil {
			break
		}
		count++
	}
	if count != db.Len() {
		t.Errorf("GN visited %d of %d segments", count, db.Len())
	}
}

// The paper's §2 scenario: retrieving one department's whole object
// requires a GU plus a GNP loop per segment type — the navigational
// style the NF² language replaces.
func TestGNPRetrievesDepartment(t *testing.T) {
	db, _ := LoadFig1(t)
	if _, err := db.GU(Qual{Segment: "DEPARTMENT", Field: "DNO", Value: model.Int(314)}); err != nil {
		t.Fatal(err)
	}
	var projects, members, equip, budget int
	for {
		seg, err := db.GNP()
		if err != nil {
			break
		}
		switch seg.Type.Name {
		case "PROJECT":
			projects++
		case "MEMBER":
			members++
		case "EQUIP":
			equip++
		case "BUDGET":
			budget++
		}
	}
	if projects != 2 || members != 7 || equip != 3 || budget != 1 {
		t.Errorf("GNP walk found %d projects, %d members, %d equip, %d budget", projects, members, equip, budget)
	}
}

// GNP must not leak into the next department's subtree.
func TestGNPStopsAtParentBoundary(t *testing.T) {
	db, _ := LoadFig1(t)
	if _, err := db.GU(Qual{Segment: "DEPARTMENT", Field: "DNO", Value: model.Int(218)}); err != nil {
		t.Fatal(err)
	}
	var members []int64
	for {
		seg, err := db.GNP(Qual{Segment: "MEMBER"})
		if err != nil {
			break
		}
		v, _ := seg.Field("EMPNO")
		members = append(members, int64(v.(model.Int)))
	}
	if len(members) != 6 {
		t.Errorf("department 218 GNP found %d members, want 6", len(members))
	}
	for _, e := range members {
		if e == 39582 { // belongs to department 314
			t.Error("GNP leaked into department 314")
		}
	}
}

// Qualified GN: all consultants in the database.
func TestQualifiedGN(t *testing.T) {
	db, _ := LoadFig1(t)
	db.Reset()
	n := 0
	for {
		if _, err := db.GN(Qual{Segment: "MEMBER", Field: "FUNCTION", Value: model.Str("Consultant")}); err != nil {
			break
		}
		n++
	}
	if n != 3 { // 56019, 89921, 44512
		t.Errorf("consultants via GN = %d, want 3", n)
	}
}

func TestParentage(t *testing.T) {
	db, _ := LoadFig1(t)
	if _, err := db.GU(Qual{Segment: "MEMBER", Field: "EMPNO", Value: model.Int(56019)}); err != nil {
		t.Fatal(err)
	}
	p, ok := db.Parentage()
	if !ok {
		t.Fatal("no parent")
	}
	if v, _ := p.Field("PNO"); v.(model.Int) != 17 {
		t.Errorf("parent project = %v", v)
	}
}

func TestFindSegmentType(t *testing.T) {
	root, _ := fig1Schema()
	if st := root.Find("MEMBER"); st == nil || st.Name != "MEMBER" {
		t.Errorf("Find(MEMBER) = %v", st)
	}
	if st := root.Find("NOPE"); st != nil {
		t.Errorf("Find(NOPE) = %v", st)
	}
}
