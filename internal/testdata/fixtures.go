// Package testdata reconstructs the example data of the paper —
// Tables 1 to 8 — as model values, plus a deterministic synthetic
// generator that scales the DEPARTMENTS workload for benchmarks.
//
// The paper prints the tables rotated and the scan is partially
// illegible; every value that the prose depends on (department
// numbers 314/218/417, manager 56194, budget 320,000, projects 17
// "CGA", 23 "HEAP", 25 "TEXT", 37 "NEBS", the consultants 56019,
// 89921 and 44512, equipment items 3278/PC/AT/PC of department 314,
// report 0179 authored by Jones, ...) is reproduced verbatim;
// remaining employee names and equipment rows are reconstructed
// plausibly and consistently. EMPLOYEES-1NF carries one tuple per
// project member and manager of Table 5, as §3 Example 7 requires.
package testdata

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Schema helpers keep fixture declarations short.
func atom(name string, k model.Kind) model.Attr {
	return model.Attr{Name: name, Type: model.AtomicType(k)}
}

func sub(name string, ordered bool, attrs ...model.Attr) model.Attr {
	return model.Attr{Name: name, Type: model.TableOf(ordered, attrs...)}
}

// DepartmentsType is the schema of the paper's Table 5:
//
//	{ DEPARTMENTS } (DNO, MGRNO, { PROJECTS } (PNO, PNAME,
//	  { MEMBERS } (EMPNO, FUNCTION)), BUDGET, { EQUIP } (QU, TYPE))
func DepartmentsType() *model.TableType {
	return model.MustTableType(false,
		atom("DNO", model.KindInt),
		atom("MGRNO", model.KindInt),
		sub("PROJECTS", false,
			atom("PNO", model.KindInt),
			atom("PNAME", model.KindString),
			sub("MEMBERS", false,
				atom("EMPNO", model.KindInt),
				atom("FUNCTION", model.KindString),
			),
		),
		atom("BUDGET", model.KindInt),
		sub("EQUIP", false,
			atom("QU", model.KindInt),
			atom("TYPE", model.KindString),
		),
	)
}

func member(empno int64, function string) model.Tuple {
	return model.Tuple{model.Int(empno), model.Str(function)}
}

func project(pno int64, pname string, members ...model.Tuple) model.Tuple {
	return model.Tuple{model.Int(pno), model.Str(pname), model.NewRelation(members...)}
}

func equip(qu int64, typ string) model.Tuple {
	return model.Tuple{model.Int(qu), model.Str(typ)}
}

// Departments returns the contents of Table 5: departments 314, 218
// and 417 with their projects, members, budgets and equipment.
func Departments() *model.Table {
	return model.NewRelation(
		model.Tuple{
			model.Int(314), model.Int(56194),
			model.NewRelation(
				project(17, "CGA",
					member(39582, "Leader"),
					member(56019, "Consultant"),
					member(69011, "Secretary"),
				),
				project(23, "HEAP",
					member(58912, "Staff"),
					member(90011, "Leader"),
					member(78218, "Secretary"),
					member(98602, "Staff"),
				),
			),
			model.Int(320000),
			model.NewRelation(equip(2, "3278"), equip(3, "PC/AT"), equip(1, "PC")),
		},
		model.Tuple{
			model.Int(218), model.Int(71349),
			model.NewRelation(
				project(25, "TEXT",
					member(92100, "Leader"),
					member(89921, "Consultant"),
					member(44512, "Consultant"),
					member(99023, "Secretary"),
					member(89211, "Staff"),
					member(12327, "Staff"),
				),
			),
			model.Int(440000),
			model.NewRelation(equip(2, "3278"), equip(1, "PC/AT"), equip(1, "3179"), equip(1, "PC")),
		},
		model.Tuple{
			model.Int(417), model.Int(91093),
			model.NewRelation(
				project(37, "NEBS",
					member(96001, "Staff"),
					member(75913, "Staff"),
					member(81193, "Leader"),
					member(87710, "Secretary"),
				),
			),
			model.Int(360000),
			model.NewRelation(
				equip(1, "4361"), equip(2, "PC/XT"), equip(2, "3278"),
				equip(1, "3270"), equip(1, "3179"), equip(1, "PC"),
			),
		},
	)
}

// DepartmentsFlatType is the schema of Table 1 (DEPARTMENTS-1NF).
func DepartmentsFlatType() *model.TableType {
	return model.MustTableType(false,
		atom("DNO", model.KindInt),
		atom("MGRNO", model.KindInt),
		atom("BUDGET", model.KindInt),
	)
}

// DepartmentsFlat returns the contents of Table 1.
func DepartmentsFlat() *model.Table {
	return model.NewRelation(
		model.Tuple{model.Int(314), model.Int(56194), model.Int(320000)},
		model.Tuple{model.Int(218), model.Int(71349), model.Int(440000)},
		model.Tuple{model.Int(417), model.Int(91093), model.Int(360000)},
	)
}

// ProjectsFlatType is the schema of Table 2 (PROJECTS-1NF).
func ProjectsFlatType() *model.TableType {
	return model.MustTableType(false,
		atom("PNO", model.KindInt),
		atom("PNAME", model.KindString),
		atom("DNO", model.KindInt),
	)
}

// ProjectsFlat returns the contents of Table 2.
func ProjectsFlat() *model.Table {
	return model.NewRelation(
		model.Tuple{model.Int(17), model.Str("CGA"), model.Int(314)},
		model.Tuple{model.Int(23), model.Str("HEAP"), model.Int(314)},
		model.Tuple{model.Int(25), model.Str("TEXT"), model.Int(218)},
		model.Tuple{model.Int(37), model.Str("NEBS"), model.Int(417)},
	)
}

// MembersFlatType is the schema of Table 3 (MEMBERS-1NF).
func MembersFlatType() *model.TableType {
	return model.MustTableType(false,
		atom("EMPNO", model.KindInt),
		atom("PNO", model.KindInt),
		atom("DNO", model.KindInt),
		atom("FUNCTION", model.KindString),
	)
}

// MembersFlat returns the contents of Table 3, derived attribute-
// faithfully from Table 5 (each member keyed by PNO and DNO).
func MembersFlat() *model.Table {
	t := model.NewRelation()
	for _, d := range Departments().Tuples {
		dno := d[0]
		for _, p := range d[2].(*model.Table).Tuples {
			pno := p[0]
			for _, m := range p[2].(*model.Table).Tuples {
				t.Append(model.Tuple{m[0], pno, dno, m[1]})
			}
		}
	}
	return t
}

// EquipFlatType is the schema of Table 4 (EQUIP-1NF).
func EquipFlatType() *model.TableType {
	return model.MustTableType(false,
		atom("DNO", model.KindInt),
		atom("QU", model.KindInt),
		atom("TYPE", model.KindString),
	)
}

// EquipFlat returns the contents of Table 4, derived from Table 5.
func EquipFlat() *model.Table {
	t := model.NewRelation()
	for _, d := range Departments().Tuples {
		dno := d[0]
		for _, e := range d[4].(*model.Table).Tuples {
			t.Append(model.Tuple{dno, e[0], e[1]})
		}
	}
	return t
}

// ReportsType is the schema of Table 6:
//
//	{ REPORTS } (REPNO, < AUTHORS > (NAME), TITLE,
//	  { DESCRIPTORS } (WORD, WEIGHT))
//
// AUTHORS is an ordered table (a list), so AUTHORS[1] denotes the
// first author (§3 Example 8).
func ReportsType() *model.TableType {
	return model.MustTableType(false,
		atom("REPNO", model.KindString),
		sub("AUTHORS", true, atom("NAME", model.KindString)),
		atom("TITLE", model.KindString),
		sub("DESCRIPTORS", false,
			atom("WORD", model.KindString),
			atom("WEIGHT", model.KindFloat),
		),
	)
}

func author(name string) model.Tuple { return model.Tuple{model.Str(name)} }

func descriptor(word string, weight float64) model.Tuple {
	return model.Tuple{model.Str(word), model.Float(weight)}
}

// Reports returns the contents of Table 6.
func Reports() *model.Table {
	return model.NewRelation(
		model.Tuple{
			model.Str("0179"),
			model.NewList(author("Jones")),
			model.Str("Concurrency and Concurrency Control"),
			model.NewRelation(
				descriptor("Concurrency Control", 0.6),
				descriptor("Recovery", 0.3),
				descriptor("Distribution", 0.1),
			),
		},
		model.Tuple{
			model.Str("0189"),
			model.NewList(author("Tilda"), author("Abraham")),
			model.Str("Text Editing and String Search"),
			model.NewRelation(
				descriptor("Editing", 0.7),
				descriptor("Formatting", 0.3),
			),
		},
		model.Tuple{
			model.Str("0292"),
			model.NewList(author("Meyer"), author("Racey")),
			model.Str("Branch and Bound Math Optimization"),
			model.NewRelation(
				descriptor("Optimization", 0.6),
				descriptor("Garbage Collection", 0.4),
			),
		},
	)
}

// UnnestedType is the schema of Table 7, the result of §3 Example 4
// (the unnest of Table 5 projected to six atomic attributes).
func UnnestedType() *model.TableType {
	return model.MustTableType(false,
		atom("DNO", model.KindInt),
		atom("MGRNO", model.KindInt),
		atom("PNO", model.KindInt),
		atom("PNAME", model.KindString),
		atom("EMPNO", model.KindInt),
		atom("FUNCTION", model.KindString),
	)
}

// Unnested returns the contents of Table 7, derived from Table 5.
func Unnested() *model.Table {
	t := model.NewRelation()
	for _, d := range Departments().Tuples {
		for _, p := range d[2].(*model.Table).Tuples {
			for _, m := range p[2].(*model.Table).Tuples {
				t.Append(model.Tuple{d[0], d[1], p[0], p[1], m[0], m[1]})
			}
		}
	}
	return t
}

// EmployeesType is the schema of Table 8 (EMPLOYEES-1NF).
func EmployeesType() *model.TableType {
	return model.MustTableType(false,
		atom("EMPNO", model.KindInt),
		atom("LNAME", model.KindString),
		atom("FNAME", model.KindString),
		atom("SEX", model.KindString),
	)
}

// Employees returns the contents of Table 8: one tuple per project
// member and manager appearing in Table 5 (20 employees). Names are
// reconstructions; employee numbers are the paper's.
func Employees() *model.Table {
	rows := []struct {
		empno        int64
		lname, fname string
		sex          string
	}{
		{39582, "Kramer", "Klaus", "male"},
		{56019, "Mayes", "Roy", "male"},
		{69011, "Andrews", "Andrea", "female"},
		{58912, "Walter", "Hans", "male"},
		{90011, "Berger", "Anna", "female"},
		{78218, "Huber", "Eva", "female"},
		{98602, "Lang", "Peter", "male"},
		{92100, "Fischer", "Karl", "male"},
		{89921, "Weber", "Marta", "female"},
		{44512, "Becker", "Paul", "male"},
		{99023, "Wolf", "Ines", "female"},
		{89211, "Koch", "Uwe", "male"},
		{12327, "Braun", "Max", "male"},
		{96001, "Deursen", "Hope", "female"},
		{75913, "Vogel", "Otto", "male"},
		{81193, "Schulz", "Rita", "female"},
		{87710, "Keller", "Ruth", "female"},
		{56194, "Schmidt", "Horst", "male"},
		{71349, "Hoffmann", "Jan", "male"},
		{91093, "Neumann", "Lisa", "female"},
	}
	t := model.NewRelation()
	for _, r := range rows {
		t.Append(model.Tuple{model.Int(r.empno), model.Str(r.lname), model.Str(r.fname), model.Str(r.sex)})
	}
	return t
}

// GenConfig parameterizes the synthetic DEPARTMENTS generator used by
// benchmarks: a scaled-up version of the Table 5 workload.
type GenConfig struct {
	Departments    int
	ProjsPerDept   int
	MembersPerProj int
	EquipPerDept   int
	Seed           int64
	// ConsultantEvery makes every n-th member a Consultant (0 = none);
	// used to control index selectivity in the Fig 7 experiments.
	ConsultantEvery int
	// ProjectNoRange, when > 0, draws project numbers from
	// [1, ProjectNoRange] so they repeat across departments — the
	// paper notes "project numbers need not be unique". 0 keeps them
	// unique.
	ProjectNoRange int
}

// DefaultGenConfig is a mid-size workload: 100 departments, each with
// 10 projects of 20 members and 8 equipment items (20k members).
func DefaultGenConfig() GenConfig {
	return GenConfig{Departments: 100, ProjsPerDept: 10, MembersPerProj: 20, EquipPerDept: 8, Seed: 42, ConsultantEvery: 10}
}

var functions = []string{"Leader", "Staff", "Secretary", "Engineer", "Analyst"}
var equipTypes = []string{"3278", "3270", "3179", "PC", "PC/AT", "PC/XT", "4361"}
var projectNames = []string{"CGA", "HEAP", "TEXT", "NEBS", "AIM", "CAD", "CAM", "CIM", "VLSI", "ROBOT"}

// GenDepartments deterministically generates an NF² DEPARTMENTS table
// with the shape of Table 5 at the configured scale.
func GenDepartments(cfg GenConfig) *model.Table {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := model.NewRelation()
	empno := int64(10000)
	pno := int64(1)
	memberSeq := 0
	for d := 0; d < cfg.Departments; d++ {
		dno := int64(100 + d)
		projs := model.NewRelation()
		for p := 0; p < cfg.ProjsPerDept; p++ {
			members := model.NewRelation()
			for m := 0; m < cfg.MembersPerProj; m++ {
				memberSeq++
				fn := functions[rng.Intn(len(functions))]
				if cfg.ConsultantEvery > 0 && memberSeq%cfg.ConsultantEvery == 0 {
					fn = "Consultant"
				}
				members.Append(member(empno, fn))
				empno++
			}
			usePno := pno
			if cfg.ProjectNoRange > 0 {
				usePno = (pno-1)%int64(cfg.ProjectNoRange) + 1
			}
			name := fmt.Sprintf("%s-%d", projectNames[rng.Intn(len(projectNames))], pno)
			projs.Append(project(usePno, name, members.Tuples...))
			pno++
		}
		eq := model.NewRelation()
		for e := 0; e < cfg.EquipPerDept; e++ {
			eq.Append(equip(int64(1+rng.Intn(5)), equipTypes[rng.Intn(len(equipTypes))]))
		}
		t.Append(model.Tuple{
			model.Int(dno),
			model.Int(empno), // manager gets the next number
			projs,
			model.Int(int64(100000 + rng.Intn(900000))),
			eq,
		})
		empno++
	}
	return t
}

// GenEmployees generates an EMPLOYEES-1NF table covering every EMPNO
// in the generated DEPARTMENTS table (for join benchmarks).
func GenEmployees(depts *model.Table, seed int64) *model.Table {
	rng := rand.New(rand.NewSource(seed))
	lnames := []string{"Kramer", "Mayes", "Andrews", "Walter", "Berger", "Huber", "Lang", "Fischer", "Weber", "Becker"}
	fnames := []string{"Klaus", "Roy", "Andrea", "Hans", "Anna", "Eva", "Peter", "Karl", "Marta", "Paul"}
	t := model.NewRelation()
	add := func(empno model.Value) {
		t.Append(model.Tuple{
			empno,
			model.Str(lnames[rng.Intn(len(lnames))]),
			model.Str(fnames[rng.Intn(len(fnames))]),
			model.Str([]string{"male", "female"}[rng.Intn(2)]),
		})
	}
	for _, d := range depts.Tuples {
		add(d[1])
		for _, p := range d[2].(*model.Table).Tuples {
			for _, m := range p[2].(*model.Table).Tuples {
				add(m[0])
			}
		}
	}
	return t
}
