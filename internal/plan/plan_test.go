package plan_test

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/testdata"
)

// openIndexed builds an office database with hierarchical indexes on
// FUNCTION and PNO plus a text index on report titles.
func openIndexed(t testing.TB) *engine.DB {
	t.Helper()
	db, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("DEPARTMENTS", testdata.DepartmentsType(), engine.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range testdata.Departments().Tuples {
		if err := db.Insert("DEPARTMENTS", tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateTable("REPORTS", testdata.ReportsType(), engine.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range testdata.Reports().Tuples {
		if err := db.Insert("REPORTS", tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateIndex("fn", "DEPARTMENTS", []string{"PROJECTS", "MEMBERS", "FUNCTION"}, "HIERARCHICAL"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("dno", "DEPARTMENTS", []string{"DNO"}, "ROOT"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTextIndex("title", "REPORTS", []string{"TITLE"}); err != nil {
		t.Fatal(err)
	}
	return db
}

func choose(t *testing.T, db *engine.DB, q string) map[int]*exec.Candidates {
	t.Helper()
	st, err := sql.ParseOne(q)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*sql.Select)
	return plan.Choose(sel, db.Runtime())
}

func TestChooseDirectEquality(t *testing.T) {
	db := openIndexed(t)
	cands := choose(t, db, `SELECT x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = 314`)
	if cands == nil || cands[0] == nil {
		t.Fatal("no access path chosen for DNO = 314")
	}
	if len(cands[0].Refs) != 1 {
		t.Errorf("candidates = %d, want 1", len(cands[0].Refs))
	}
}

func TestChooseExistsChain(t *testing.T) {
	db := openIndexed(t)
	cands := choose(t, db, `
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Consultant'`)
	if cands == nil || cands[0] == nil {
		t.Fatal("no access path for the EXISTS chain")
	}
	if len(cands[0].Refs) != 2 { // departments 314 and 218
		t.Errorf("candidates = %d, want 2", len(cands[0].Refs))
	}
}

func TestChooseConjunctionIntersects(t *testing.T) {
	db := openIndexed(t)
	cands := choose(t, db, `
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE x.DNO = 218
  AND EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Consultant'`)
	if cands == nil || cands[0] == nil {
		t.Fatal("no access path for the conjunction")
	}
	if len(cands[0].Refs) != 1 {
		t.Errorf("intersection = %d candidates, want 1", len(cands[0].Refs))
	}
}

func TestChooseTextPredicate(t *testing.T) {
	db := openIndexed(t)
	cands := choose(t, db, `
SELECT x.REPNO FROM x IN REPORTS WHERE x.TITLE CONTAINS '*concurrency*'`)
	if cands == nil || cands[0] == nil {
		t.Fatal("no access path for CONTAINS")
	}
	if len(cands[0].Refs) != 1 {
		t.Errorf("text candidates = %d, want 1", len(cands[0].Refs))
	}
}

func TestChooseDeclinesUnindexable(t *testing.T) {
	db := openIndexed(t)
	cases := []string{
		// No index on BUDGET.
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET = 320000`,
		// Inequality is not an index-eq predicate.
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO <> 314`,
		// OR is not a conjunct.
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 314 OR x.DNO = 218`,
		// ALL cannot use an existence index.
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE ALL y IN x.PROJECTS: y.PNO = 17`,
		// No WHERE at all.
		`SELECT x.DNO FROM x IN DEPARTMENTS`,
	}
	for _, q := range cases {
		cands := choose(t, db, q)
		if cands != nil && cands[0] != nil {
			t.Errorf("planner chose an index for %q: %v", q, cands[0].Why)
		}
	}
}

func TestChooseIgnoresASOFItems(t *testing.T) {
	// ASOF state may differ from the index (which reflects now), so
	// the planner must not use indexes for ASOF items.
	ts := int64(0)
	db, err := engine.Open(engine.Options{Clock: func() int64 { ts++; return ts }})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("DEPARTMENTS", testdata.DepartmentsType(), engine.TableOptions{Versioned: true}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range testdata.Departments().Tuples {
		db.Insert("DEPARTMENTS", tup)
	}
	if err := db.CreateIndex("dno", "DEPARTMENTS", []string{"DNO"}, "HIERARCHICAL"); err != nil {
		t.Fatal(err)
	}
	cands := choose(t, db, `SELECT x.DNO FROM x IN DEPARTMENTS ASOF 1 WHERE x.DNO = 314`)
	if cands != nil && cands[0] != nil {
		t.Error("planner used an index for an ASOF item")
	}
}

func TestChooseSkipsDataTIDIndexes(t *testing.T) {
	db, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("DEPARTMENTS", testdata.DepartmentsType(), engine.TableOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, tup := range testdata.Departments().Tuples {
		db.Insert("DEPARTMENTS", tup)
	}
	if err := db.CreateIndex("fn_data", "DEPARTMENTS", []string{"PROJECTS", "MEMBERS", "FUNCTION"}, "DATA"); err != nil {
		t.Fatal(err)
	}
	cands := choose(t, db, `
SELECT x.DNO FROM x IN DEPARTMENTS
WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Consultant'`)
	if cands != nil && cands[0] != nil {
		t.Error("planner chose a DATA-TID index, which cannot locate objects (§4.2)")
	}
}

// Whatever the planner chooses must be a superset of the true result:
// indexed and unindexed evaluation agree on a battery of queries.
func TestPlannerSoundness(t *testing.T) {
	queries := []string{
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 314`,
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 999`,
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Consultant'`,
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Nobody'`,
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.DNO = 314 AND EXISTS y IN x.PROJECTS EXISTS z IN y.MEMBERS: z.FUNCTION = 'Consultant'`,
		`SELECT x.REPNO FROM x IN REPORTS WHERE x.TITLE CONTAINS '*edit*'`,
	}
	plain, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain.CreateTable("DEPARTMENTS", testdata.DepartmentsType(), engine.TableOptions{})
	plain.CreateTable("REPORTS", testdata.ReportsType(), engine.TableOptions{})
	for _, tup := range testdata.Departments().Tuples {
		plain.Insert("DEPARTMENTS", tup)
	}
	for _, tup := range testdata.Reports().Tuples {
		plain.Insert("REPORTS", tup)
	}
	indexed := openIndexed(t)
	for _, q := range queries {
		a, _, err := plain.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		b, _, err := indexed.Query(q)
		if err != nil {
			t.Fatalf("%s (indexed): %v", q, err)
		}
		if !model.TableEqual(a, b) {
			t.Errorf("indexed evaluation differs for %q:\nplain   %v\nindexed %v", q, a, b)
		}
	}
}

// Range predicates use inclusive B-tree scans; exclusive bounds
// over-approximate and the executor filters, so results match scans.
func TestChooseRangePredicates(t *testing.T) {
	db := openIndexed(t)
	if err := db.CreateIndex("budget", "DEPARTMENTS", []string{"BUDGET"}, "HIERARCHICAL"); err != nil {
		t.Fatal(err)
	}
	cands := choose(t, db, `SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 330000`)
	if cands == nil || cands[0] == nil || !strings.Contains(cands[0].Why, "range") {
		t.Fatalf("no range access path: %+v", cands)
	}
	// 440000 and 360000 qualify; 320000 does not (boundary superset ok).
	if len(cands[0].Refs) > 3 || len(cands[0].Refs) < 2 {
		t.Errorf("range candidates = %d", len(cands[0].Refs))
	}
	// Result equivalence against an index-less database.
	plain, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain.CreateTable("DEPARTMENTS", testdata.DepartmentsType(), engine.TableOptions{})
	for _, tup := range testdata.Departments().Tuples {
		plain.Insert("DEPARTMENTS", tup)
	}
	for _, q := range []string{
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET > 330000`,
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET >= 360000`,
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET < 330000`,
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE 330000 < x.BUDGET`,
		`SELECT x.DNO FROM x IN DEPARTMENTS WHERE x.BUDGET <= 320000`,
	} {
		a, _, err := plain.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		b, _, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s (indexed): %v", q, err)
		}
		if !model.TableEqual(a, b) {
			t.Errorf("range query %q differs:\nplain %v\nindexed %v", q, a, b)
		}
	}
}
