package plan

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/sql"
)

// prepares counts bind-phase runs (Prepare calls). Together with
// ChooseCount it backs the "zero planner work on re-execution"
// acceptance tests.
var prepares atomic.Uint64

// PrepareCount returns the process-wide count of bind-phase runs.
func PrepareCount() uint64 { return prepares.Load() }

// Prepared is the immutable product of the bind/plan phase for one
// statement: the parsed AST plus, for selects, everything openCursor
// would otherwise compute per execution — result schema, required
// path sets, and access-path choices. A Prepared is self-contained
// and safe for concurrent use: executing one reads these fields but
// never mutates them, and every data-dependent decision (resolving
// `?` operands, index lookups) happens at execute time against the
// live runtime.
type Prepared struct {
	// SQL is the normalized statement text — the plan-cache key.
	SQL string
	// Text is the original statement text, kept for error tagging.
	Text string
	// Stmt is the parsed statement; Sel aliases it for selects.
	Stmt sql.Statement
	Sel  *sql.Select
	// NumParams is the number of `?` placeholders.
	NumParams int
	// Epoch is the catalog epoch the plan was bound under. A cache
	// holding this Prepared compares it against the live epoch and
	// re-binds on mismatch (DDL, index create/drop, quarantine).
	Epoch uint64

	// Bind products for selects (nil/empty otherwise).
	ResultType *model.TableType
	Paths      map[int]*object.PathSet
	Access     map[int][]AccessChoice
	// Desc is the bind-time plan description per FROM item, rendered
	// for EXPLAIN without executing.
	Desc []string
}

// Prepare runs the bind/plan phase: for selects it infers the result
// schema, derives required path sets and records access-path choices;
// for other statements the kept AST is the whole bind product (their
// execution is data-driven, not plan-driven). norm is the statement's
// normalized text (sql.Normalize — computed once by the caller, who
// also uses it as the cache key); epoch is the catalog epoch the
// caller observed while holding the catalog stable.
func Prepare(st sql.Stmt, norm string, ex *exec.Executor, epoch uint64) (*Prepared, error) {
	prepares.Add(1)
	p := &Prepared{
		SQL:       norm,
		Text:      st.Text,
		Stmt:      st.Statement,
		NumParams: st.Params,
		Epoch:     epoch,
	}
	sel, ok := st.Statement.(*sql.Select)
	if !ok {
		if e, isExplain := st.Statement.(*sql.Explain); isExplain {
			sel = e.Sel
		}
	}
	if sel != nil {
		tt, err := ex.InferSelect(sel)
		if err != nil {
			return nil, err
		}
		p.Sel = sel
		p.ResultType = tt
		p.Paths = ex.DeriveSelectPaths(sel)
		p.Access = chooseAccess(sel, ex.RT)
		p.Desc = describeAccess(ex, sel, p.Access, p.Paths)
	}
	return p, nil
}

// Candidates evaluates the plan's access choices against the live
// runtime and the bound parameters, yielding the candidate root sets
// for this execution. Indexes are re-resolved by name, so a choice
// whose index has since been dropped or degraded quietly widens to a
// full scan — a stale plan can never touch a quarantined index.
func (p *Prepared) Candidates(rt exec.Runtime, params []model.Value) map[int]*exec.Candidates {
	return evalAccess(p.Access, rt, params)
}

// Describe renders the bind-time plan (access choices and fetch sets
// per FROM item) without executing anything. Non-select statements
// report a single generic line.
func (p *Prepared) Describe() []string {
	if p.Sel == nil {
		return []string{fmt.Sprintf("%T: direct execution (no access-path plan)", p.Stmt)}
	}
	return p.Desc
}

// describeAccess is the bind-time analogue of exec's plan
// description: it renders the chosen access paths without candidate
// counts (those exist only after evaluation).
func describeAccess(ex *exec.Executor, sel *sql.Select, access map[int][]AccessChoice, paths map[int]*object.PathSet) []string {
	out := make([]string, len(sel.From))
	for i, fi := range sel.From {
		source := fi.Source.Table
		if source == "" {
			out[i] = fmt.Sprintf("%s IN %s: iterate subtable of outer binding", fi.Var, fi.Source.Path)
			continue
		}
		descr := "full table scan"
		if choices := access[i]; len(choices) > 0 {
			parts := make([]string, len(choices))
			for j, c := range choices {
				parts[j] = c.String()
			}
			descr = strings.Join(parts, " ∩ ")
		}
		fetch := "*"
		if t, ok := ex.RT.Table(source); ok && paths != nil {
			fetch = paths[i].Describe(t.Type)
		}
		out[i] = fmt.Sprintf("%s IN %s: %s, fetch %s", fi.Var, source, descr, fetch)
	}
	return out
}
