// Package plan selects access paths for NF² queries. Following §4.2
// of the paper, it inspects the conjuncts of a query's WHERE clause
// for predicates that an index can answer:
//
//   - direct restrictions x.A = literal on a top-level attribute;
//   - EXISTS chains like EXISTS y IN x.PROJECTS EXISTS z IN
//     y.MEMBERS: z.FUNCTION = 'Consultant', which an index on
//     PROJECTS.MEMBERS.FUNCTION answers;
//   - masked text predicates x.TITLE CONTAINS '*comput*', answered by
//     a text index.
//
// Each usable conjunct restricts a top-level FROM variable to a set
// of candidate complex objects (the distinct roots of the index
// addresses); conjunctions intersect the sets. Data-TID indexes are
// never chosen: as §4.2 shows, their addresses cannot locate the
// containing complex object at all. The executor re-verifies the full
// WHERE clause on the candidates, so planning only needs superset
// correctness.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/page"
	"repro/internal/sql"
	"repro/internal/textindex"
)

// Choose implements exec.Planner.
func Choose(sel *sql.Select, rt exec.Runtime) map[int]*exec.Candidates {
	if sel.Where == nil {
		return nil
	}
	out := make(map[int]*exec.Candidates)
	for i, fi := range sel.From {
		if fi.Source.Table == "" || fi.AsOf != nil {
			continue // only uncorrelated current-state stored tables
		}
		var sets []rootSet
		for _, conj := range conjuncts(sel.Where) {
			if s, ok := tryConjunct(conj, fi.Var, fi.Source.Table, rt); ok {
				sets = append(sets, s)
			}
		}
		if len(sets) == 0 {
			continue
		}
		refs := sets[0].refs
		why := sets[0].why
		for _, s := range sets[1:] {
			refs = intersectRefs(refs, s.refs)
			why += " ∩ " + s.why
		}
		out[i] = &exec.Candidates{Refs: refs, Why: why}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

type rootSet struct {
	refs []page.TID
	why  string
}

// conjuncts splits a predicate at top-level ANDs.
func conjuncts(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// tryConjunct recognizes an indexable predicate restricting variable
// v over stored table tbl.
func tryConjunct(e sql.Expr, v, tbl string, rt exec.Runtime) (rootSet, bool) {
	switch x := e.(type) {
	case *sql.Binary:
		path, lit, flipped, ok := pathCmpLiteral(x)
		if !ok || path.Var != v {
			return rootSet{}, false
		}
		names, ok := nameSteps(path.Steps)
		if !ok {
			return rootSet{}, false
		}
		op := x.Op
		if flipped {
			op = flip(op)
		}
		if op == "=" {
			return lookupIndex(rt, tbl, names, lit)
		}
		return lookupIndexRange(rt, tbl, names, op, lit)
	case *sql.Quant:
		if x.All {
			return rootSet{}, false
		}
		names, lit, ok := existsChain(x, v)
		if !ok {
			return rootSet{}, false
		}
		return lookupIndex(rt, tbl, names, lit)
	case *sql.Contains:
		path, ok := x.Text.(*sql.PathExpr)
		if !ok || path.Var != v {
			return rootSet{}, false
		}
		names, ok := nameSteps(path.Steps)
		if !ok {
			return rootSet{}, false
		}
		return lookupTextIndex(rt, tbl, names, x.Mask)
	}
	return rootSet{}, false
}

// pathEqLiteral matches path = literal (either side).
func pathEqLiteral(b *sql.Binary) (*sql.PathExpr, *sql.Literal, bool) {
	if b.Op != "=" {
		return nil, nil, false
	}
	p, l, _, ok := pathCmpLiteral(b)
	return p, l, ok
}

// pathCmpLiteral matches path OP literal (either side) for the
// comparison operators; flipped reports that the literal was on the
// left, so the effective operator must be mirrored.
func pathCmpLiteral(b *sql.Binary) (*sql.PathExpr, *sql.Literal, bool, bool) {
	switch b.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return nil, nil, false, false
	}
	if p, ok := b.L.(*sql.PathExpr); ok {
		if l, ok := b.R.(*sql.Literal); ok {
			return p, l, false, true
		}
	}
	if p, ok := b.R.(*sql.PathExpr); ok {
		if l, ok := b.L.(*sql.Literal); ok {
			return p, l, true, true
		}
	}
	return nil, nil, false, false
}

func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// lookupIndexRange answers range predicates with an inclusive B-tree
// range scan. Exclusive bounds deliver a superset (the boundary key),
// which is sound because the executor re-verifies the WHERE clause.
func lookupIndexRange(rt exec.Runtime, tbl string, path []string, op string, lit *sql.Literal) (rootSet, bool) {
	for _, ix := range rt.Indexes(tbl) {
		if ix.Kind == index.DataTID || !samePath(ix.Path, path) {
			continue
		}
		var lo, hi model.Value
		switch op {
		case "<", "<=":
			hi = lit.Val
		case ">", ">=":
			lo = lit.Val
		}
		var addrs []index.Addr
		if err := ix.LookupRange(lo, hi, func(as []index.Addr) bool {
			addrs = append(addrs, as...)
			return true
		}); err != nil {
			continue
		}
		return rootSet{
			refs: index.DistinctRoots(addrs),
			why:  fmt.Sprintf("index %s(%s) %s %v (range)", ix.Name, strings.Join(path, "."), op, lit.Val),
		}, true
	}
	return rootSet{}, false
}

func nameSteps(steps []sql.PathStep) ([]string, bool) {
	var names []string
	for _, s := range steps {
		if s.Name == "" {
			return nil, false // [k] steps are not indexable
		}
		names = append(names, s.Name)
	}
	if len(names) == 0 {
		return nil, false
	}
	return names, true
}

// existsChain matches EXISTS v1 IN x.A [EXISTS v2 IN v1.B ...]:
// vn.C = literal, returning the full attribute path A...B...C.
func existsChain(q *sql.Quant, baseVar string) ([]string, *sql.Literal, bool) {
	var names []string
	curVar := baseVar
	cur := q
	for {
		if cur.All || cur.Source.Path == nil || cur.Source.Path.Var != curVar {
			return nil, nil, false
		}
		segs, ok := nameSteps(cur.Source.Path.Steps)
		if !ok {
			return nil, nil, false
		}
		names = append(names, segs...)
		curVar = cur.Var
		switch body := cur.Cond.(type) {
		case *sql.Quant:
			cur = body
		case *sql.Binary:
			path, lit, ok := pathEqLiteral(body)
			if !ok || path.Var != curVar {
				return nil, nil, false
			}
			segs, ok := nameSteps(path.Steps)
			if !ok {
				return nil, nil, false
			}
			return append(names, segs...), lit, true
		default:
			return nil, nil, false
		}
	}
}

func lookupIndex(rt exec.Runtime, tbl string, path []string, lit *sql.Literal) (rootSet, bool) {
	for _, ix := range rt.Indexes(tbl) {
		if ix.Kind == index.DataTID {
			continue // cannot locate the containing complex object (§4.2)
		}
		if !samePath(ix.Path, path) {
			continue
		}
		addrs, err := ix.Lookup(lit.Val)
		if err != nil {
			continue
		}
		return rootSet{
			refs: index.DistinctRoots(addrs),
			why:  fmt.Sprintf("index %s(%s)=%v", ix.Name, strings.Join(path, "."), lit.Val),
		}, true
	}
	return rootSet{}, false
}

func lookupTextIndex(rt exec.Runtime, tbl string, path []string, mask string) (rootSet, bool) {
	for _, ti := range rt.TextIndexes(tbl) {
		if !samePath(ti.Path, path) {
			continue
		}
		addrs := ti.Search(mask)
		return rootSet{
			refs: textindex.DistinctRoots(addrs),
			why:  fmt.Sprintf("text index %s CONTAINS %q", ti.Name, mask),
		}, true
	}
	return rootSet{}, false
}

func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) {
			return false
		}
	}
	return true
}

func intersectRefs(a, b []page.TID) []page.TID {
	set := make(map[page.TID]bool, len(b))
	for _, r := range b {
		set[r] = true
	}
	var out []page.TID
	for _, r := range a {
		if set[r] {
			out = append(out, r)
		}
	}
	return out
}
