// Package plan selects access paths for NF² queries. Following §4.2
// of the paper, it inspects the conjuncts of a query's WHERE clause
// for predicates that an index can answer:
//
//   - direct restrictions x.A = literal on a top-level attribute;
//   - EXISTS chains like EXISTS y IN x.PROJECTS EXISTS z IN
//     y.MEMBERS: z.FUNCTION = 'Consultant', which an index on
//     PROJECTS.MEMBERS.FUNCTION answers;
//   - masked text predicates x.TITLE CONTAINS '*comput*', answered by
//     a text index.
//
// The work is split into two phases. The bind phase (chooseAccess)
// recognizes indexable conjuncts and records an AccessChoice per
// usable one — which index, which operator, which operand expression.
// The operand may be a `?` placeholder, so a choice is a pure
// decision, independent of data and of parameter values; it is what a
// cached plan stores. The execute phase (evalChoice) resolves the
// operand against the bound arguments and runs the index lookup,
// producing the candidate root set for this execution. Conjunctions
// intersect the sets. Data-TID indexes are never chosen: as §4.2
// shows, their addresses cannot locate the containing complex object
// at all. The executor re-verifies the full WHERE clause on the
// candidates, so planning only needs superset correctness — a choice
// that cannot be evaluated (missing index, unbound parameter) simply
// falls back to a full scan.
package plan

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/page"
	"repro/internal/sql"
	"repro/internal/textindex"
)

// chooses counts invocations of the inline planner; prepares (in
// prepared.go) counts bind-phase invocations. The prepared-statement
// tests assert both stay flat across PreparedStmt re-executions — the
// "zero planner work" acceptance check.
var chooses atomic.Uint64

// ChooseCount returns the process-wide count of inline planning runs.
func ChooseCount() uint64 { return chooses.Load() }

// AccessChoice is one bind-time access-path decision: answer a WHERE
// conjunct restricting one FROM variable with the named index. It
// carries no data — evaluation at execute time resolves the operand
// (a literal or a bound `?` argument) and runs the lookup.
type AccessChoice struct {
	// Table is the stored table the FROM item ranges over.
	Table string
	// Index is the chosen index's name (value index, or text index
	// when Text is set). Evaluation re-resolves it by name against the
	// live runtime, so a dropped or degraded index silently degrades
	// the choice to a full scan — a stale plan can never touch it.
	Index string
	Text  bool
	// Path is the indexed attribute path (for plan description).
	Path []string
	// Op and Operand describe the predicate for value indexes:
	// Op ∈ {=, <, <=, >, >=}, Operand a *sql.Literal or *sql.Param.
	Op      string
	Operand sql.Expr
	// Mask is the CONTAINS mask for text indexes.
	Mask string
}

// String renders the choice for EXPLAIN output.
func (c AccessChoice) String() string {
	if c.Text {
		return fmt.Sprintf("text index %s CONTAINS %q", c.Index, c.Mask)
	}
	return fmt.Sprintf("index %s(%s) %s %s", c.Index, strings.Join(c.Path, "."), c.Op, operandString(c.Operand))
}

func operandString(x sql.Expr) string {
	switch o := x.(type) {
	case *sql.Literal:
		return fmt.Sprintf("%v", o.Val)
	case *sql.Param:
		return fmt.Sprintf("?%d", o.Ord)
	}
	return fmt.Sprintf("%v", x)
}

// Choose implements exec.Planner: the inline (unprepared) path binds
// and evaluates in one go. Choices whose operand is an unbound
// parameter are skipped — soundly widening to a full scan.
func Choose(sel *sql.Select, rt exec.Runtime) map[int]*exec.Candidates {
	chooses.Add(1)
	return evalAccess(chooseAccess(sel, rt), rt, nil)
}

// chooseAccess records the access choices for every top-level FROM
// item of a select (keyed by item index). Only uncorrelated
// current-state stored tables are considered.
func chooseAccess(sel *sql.Select, rt exec.Runtime) map[int][]AccessChoice {
	if sel.Where == nil {
		return nil
	}
	out := make(map[int][]AccessChoice)
	for i, fi := range sel.From {
		if fi.Source.Table == "" || fi.AsOf != nil {
			continue
		}
		var choices []AccessChoice
		for _, conj := range conjuncts(sel.Where) {
			if c, ok := tryConjunct(conj, fi.Var, fi.Source.Table, rt); ok {
				choices = append(choices, c)
			}
		}
		if len(choices) > 0 {
			out[i] = choices
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// evalAccess evaluates recorded choices against the live runtime and
// the bound parameters, intersecting the root sets per FROM item.
func evalAccess(access map[int][]AccessChoice, rt exec.Runtime, params []model.Value) map[int]*exec.Candidates {
	if len(access) == 0 {
		return nil
	}
	out := make(map[int]*exec.Candidates)
	for i, choices := range access {
		var sets []rootSet
		for _, c := range choices {
			if s, ok := evalChoice(c, rt, params); ok {
				sets = append(sets, s)
			}
		}
		if len(sets) == 0 {
			continue
		}
		refs := sets[0].refs
		why := sets[0].why
		for _, s := range sets[1:] {
			refs = intersectRefs(refs, s.refs)
			why += " ∩ " + s.why
		}
		out[i] = &exec.Candidates{Refs: refs, Why: why}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

type rootSet struct {
	refs []page.TID
	why  string
}

// evalChoice runs one access choice: resolve the operand, re-resolve
// the index by name, and look up. Any failure reports not-ok and the
// conjunct is answered by the scan instead.
func evalChoice(c AccessChoice, rt exec.Runtime, params []model.Value) (rootSet, bool) {
	if c.Text {
		for _, ti := range rt.TextIndexes(c.Table) {
			if ti.Name != c.Index {
				continue
			}
			addrs := ti.Search(c.Mask)
			return rootSet{
				refs: textindex.DistinctRoots(addrs),
				why:  fmt.Sprintf("text index %s CONTAINS %q", ti.Name, c.Mask),
			}, true
		}
		return rootSet{}, false
	}
	val, ok := operandValue(c.Operand, params)
	if !ok {
		return rootSet{}, false
	}
	for _, ix := range rt.Indexes(c.Table) {
		if ix.Name != c.Index || ix.Kind == index.DataTID {
			continue
		}
		if c.Op == "=" {
			addrs, err := ix.Lookup(val)
			if err != nil {
				return rootSet{}, false
			}
			return rootSet{
				refs: index.DistinctRoots(addrs),
				why:  fmt.Sprintf("index %s(%s)=%v", ix.Name, strings.Join(c.Path, "."), val),
			}, true
		}
		var lo, hi model.Value
		switch c.Op {
		case "<", "<=":
			hi = val
		case ">", ">=":
			lo = val
		default:
			return rootSet{}, false
		}
		var addrs []index.Addr
		if err := ix.LookupRange(lo, hi, func(as []index.Addr) bool {
			addrs = append(addrs, as...)
			return true
		}); err != nil {
			return rootSet{}, false
		}
		return rootSet{
			refs: index.DistinctRoots(addrs),
			why:  fmt.Sprintf("index %s(%s) %s %v (range)", ix.Name, strings.Join(c.Path, "."), c.Op, val),
		}, true
	}
	return rootSet{}, false
}

// operandValue resolves a choice operand: literals carry their value,
// parameters read the bound argument by 1-based ordinal.
func operandValue(x sql.Expr, params []model.Value) (model.Value, bool) {
	switch o := x.(type) {
	case *sql.Literal:
		return o.Val, true
	case *sql.Param:
		if o.Ord >= 1 && o.Ord <= len(params) {
			return params[o.Ord-1], true
		}
		return nil, false
	}
	return nil, false
}

// conjuncts splits a predicate at top-level ANDs.
func conjuncts(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// tryConjunct recognizes an indexable predicate restricting variable
// v over stored table tbl, returning the access choice to answer it.
func tryConjunct(e sql.Expr, v, tbl string, rt exec.Runtime) (AccessChoice, bool) {
	switch x := e.(type) {
	case *sql.Binary:
		path, operand, flipped, ok := pathCmpOperand(x)
		if !ok || path.Var != v {
			return AccessChoice{}, false
		}
		names, ok := nameSteps(path.Steps)
		if !ok {
			return AccessChoice{}, false
		}
		op := x.Op
		if flipped {
			op = flip(op)
		}
		return findValueIndex(rt, tbl, names, op, operand)
	case *sql.Quant:
		if x.All {
			return AccessChoice{}, false
		}
		names, operand, ok := existsChain(x, v)
		if !ok {
			return AccessChoice{}, false
		}
		return findValueIndex(rt, tbl, names, "=", operand)
	case *sql.Contains:
		path, ok := x.Text.(*sql.PathExpr)
		if !ok || path.Var != v {
			return AccessChoice{}, false
		}
		names, ok := nameSteps(path.Steps)
		if !ok {
			return AccessChoice{}, false
		}
		return findTextIndex(rt, tbl, names, x.Mask)
	}
	return AccessChoice{}, false
}

// isOperand reports whether an expression can serve as an index
// operand: a constant literal or a `?` parameter.
func isOperand(x sql.Expr) bool {
	switch x.(type) {
	case *sql.Literal, *sql.Param:
		return true
	}
	return false
}

// pathEqOperand matches path = (literal|param) (either side).
func pathEqOperand(b *sql.Binary) (*sql.PathExpr, sql.Expr, bool) {
	if b.Op != "=" {
		return nil, nil, false
	}
	p, o, _, ok := pathCmpOperand(b)
	return p, o, ok
}

// pathCmpOperand matches path OP (literal|param) (either side) for
// the comparison operators; flipped reports that the operand was on
// the left, so the effective operator must be mirrored.
func pathCmpOperand(b *sql.Binary) (*sql.PathExpr, sql.Expr, bool, bool) {
	switch b.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return nil, nil, false, false
	}
	if p, ok := b.L.(*sql.PathExpr); ok && isOperand(b.R) {
		return p, b.R, false, true
	}
	if p, ok := b.R.(*sql.PathExpr); ok && isOperand(b.L) {
		return p, b.L, true, true
	}
	return nil, nil, false, false
}

func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func nameSteps(steps []sql.PathStep) ([]string, bool) {
	var names []string
	for _, s := range steps {
		if s.Name == "" {
			return nil, false // [k] steps are not indexable
		}
		names = append(names, s.Name)
	}
	if len(names) == 0 {
		return nil, false
	}
	return names, true
}

// existsChain matches EXISTS v1 IN x.A [EXISTS v2 IN v1.B ...]:
// vn.C = operand, returning the full attribute path A...B...C.
func existsChain(q *sql.Quant, baseVar string) ([]string, sql.Expr, bool) {
	var names []string
	curVar := baseVar
	cur := q
	for {
		if cur.All || cur.Source.Path == nil || cur.Source.Path.Var != curVar {
			return nil, nil, false
		}
		segs, ok := nameSteps(cur.Source.Path.Steps)
		if !ok {
			return nil, nil, false
		}
		names = append(names, segs...)
		curVar = cur.Var
		switch body := cur.Cond.(type) {
		case *sql.Quant:
			cur = body
		case *sql.Binary:
			path, operand, ok := pathEqOperand(body)
			if !ok || path.Var != curVar {
				return nil, nil, false
			}
			segs, ok := nameSteps(path.Steps)
			if !ok {
				return nil, nil, false
			}
			return append(names, segs...), operand, true
		default:
			return nil, nil, false
		}
	}
}

// findValueIndex picks the first live non-DataTID index matching the
// attribute path and records the choice.
func findValueIndex(rt exec.Runtime, tbl string, path []string, op string, operand sql.Expr) (AccessChoice, bool) {
	for _, ix := range rt.Indexes(tbl) {
		if ix.Kind == index.DataTID {
			continue // cannot locate the containing complex object (§4.2)
		}
		if !samePath(ix.Path, path) {
			continue
		}
		return AccessChoice{Table: tbl, Index: ix.Name, Path: path, Op: op, Operand: operand}, true
	}
	return AccessChoice{}, false
}

func findTextIndex(rt exec.Runtime, tbl string, path []string, mask string) (AccessChoice, bool) {
	for _, ti := range rt.TextIndexes(tbl) {
		if !samePath(ti.Path, path) {
			continue
		}
		return AccessChoice{Table: tbl, Index: ti.Name, Text: true, Path: path, Mask: mask}, true
	}
	return AccessChoice{}, false
}

func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) {
			return false
		}
	}
	return true
}

func intersectRefs(a, b []page.TID) []page.TID {
	set := make(map[page.TID]bool, len(b))
	for _, r := range b {
		set[r] = true
	}
	var out []page.TID
	for _, r := range a {
		if set[r] {
			out = append(out, r)
		}
	}
	return out
}
