// Package lorie implements the baseline the paper contrasts AIM-II
// with (§1, §4.1): Lorie's approach /HL82, LP83/ of supporting
// complex objects ON TOP of an existing flat relational DBMS. "A
// complex object is implemented as a series of tuples logically
// linked together": every hierarchy level is an ordinary flat tuple
// extended with hidden, system-managed pointer attributes (first
// child per subtable, next sibling) used to chain the tuples of one
// complex object together.
//
// The advantage (also quoted in the paper) is that the underlying
// flat system needs almost no changes. The disadvantages are exactly
// what AIM-II's integrated design removes, and what the benchmarks
// measure:
//
//   - no clustering: the linked tuples are placed wherever the flat
//     storage layer puts them, so materializing one complex object
//     chases pointers across many pages;
//   - structure and data are interleaved: every navigation step must
//     read full data tuples just to follow their hidden pointers;
//   - complex objects are "a special animal": the flat query
//     machinery cannot see the hierarchy.
package lorie

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/page"
	"repro/internal/subtuple"
)

// Store keeps the complex objects of one nested table as linked flat
// tuples in a subtuple store.
type Store struct {
	st *subtuple.Store
	tt *model.TableType
}

// New creates a store for the nested table type.
func New(st *subtuple.Store, tt *model.TableType) *Store {
	return &Store{st: st, tt: tt}
}

// Type returns the table type.
func (s *Store) Type() *model.TableType { return s.tt }

// tuple payload: EncodeAtoms(atoms) ++ per subtable: firstChild TID
// ++ nextSibling TID. The pointer attributes are "entirely managed by
// the system" and invisible to the user.
func encodeTuple(tt *model.TableType, tup model.Tuple, children []page.TID, sibling page.TID) ([]byte, error) {
	body, err := model.EncodeAtoms(model.Atoms(tt, tup))
	if err != nil {
		return nil, err
	}
	for _, c := range children {
		body = page.AppendTID(body, c)
	}
	return page.AppendTID(body, sibling), nil
}

func decodeTuple(tt *model.TableType, raw []byte) (atoms []model.Value, children []page.TID, sibling page.TID, err error) {
	nsub := len(tt.TableIndexes())
	tail := (nsub + 1) * page.EncodedTIDLen
	if len(raw) < tail {
		err = fmt.Errorf("lorie: short tuple record")
		return
	}
	atoms, err = model.DecodeAtoms(raw[:len(raw)-tail])
	if err != nil {
		return
	}
	p := raw[len(raw)-tail:]
	for i := 0; i < nsub; i++ {
		var c page.TID
		c, err = page.DecodeTID(p)
		if err != nil {
			return
		}
		children = append(children, c)
		p = p[page.EncodedTIDLen:]
	}
	sibling, err = page.DecodeTID(p)
	return
}

// Insert stores the complex object as linked tuples and returns the
// root tuple's TID. Children are inserted before their parents (so
// the parent can embed first-child pointers) and siblings in reverse
// order (so each can point at the next); placement is wherever the
// flat layer finds room — no object clustering.
func (s *Store) Insert(tup model.Tuple) (page.TID, error) {
	if err := model.Conform(s.tt, tup); err != nil {
		return page.TID{}, err
	}
	return s.insertLevel(s.tt, tup, page.TID{})
}

func (s *Store) insertLevel(tt *model.TableType, tup model.Tuple, sibling page.TID) (page.TID, error) {
	tis := tt.TableIndexes()
	children := make([]page.TID, len(tis))
	for gi, ti := range tis {
		sub := tt.Attrs[ti].Type.Table
		tbl := tup[ti].(*model.Table)
		// Insert members in reverse so each points at its successor.
		next := page.TID{}
		for i := tbl.Len() - 1; i >= 0; i-- {
			tid, err := s.insertLevel(sub, tbl.Tuples[i], next)
			if err != nil {
				return page.TID{}, err
			}
			next = tid
		}
		children[gi] = next
	}
	rec, err := encodeTuple(tt, tup, children, sibling)
	if err != nil {
		return page.TID{}, err
	}
	return s.st.Insert(rec)
}

// Read materializes the whole complex object by chasing the pointer
// chains.
func (s *Store) Read(root page.TID) (model.Tuple, error) {
	return s.readLevel(s.tt, root)
}

func (s *Store) readLevel(tt *model.TableType, tid page.TID) (model.Tuple, error) {
	raw, err := s.st.Read(tid)
	if err != nil {
		return nil, err
	}
	atoms, children, _, err := decodeTuple(tt, raw)
	if err != nil {
		return nil, err
	}
	tis := tt.TableIndexes()
	subs := make([]*model.Table, len(tis))
	for gi, ti := range tis {
		sub := tt.Attrs[ti].Type.Table
		tbl := &model.Table{Ordered: sub.Ordered}
		cur := children[gi]
		for !cur.Nil() {
			raw, err := s.st.Read(cur)
			if err != nil {
				return nil, err
			}
			_, _, sibling, err := decodeTuple(sub, raw)
			if err != nil {
				return nil, err
			}
			member, err := s.readLevel(sub, cur)
			if err != nil {
				return nil, err
			}
			tbl.Append(member)
			cur = sibling
		}
		subs[gi] = tbl
	}
	return assemble(tt, atoms, subs)
}

func assemble(tt *model.TableType, atoms []model.Value, subs []*model.Table) (model.Tuple, error) {
	if len(atoms) != len(tt.AtomicIndexes()) {
		return nil, fmt.Errorf("lorie: stored level has %d atoms, schema wants %d", len(atoms), len(tt.AtomicIndexes()))
	}
	tup := make(model.Tuple, len(tt.Attrs))
	ai, si := 0, 0
	for i, a := range tt.Attrs {
		if a.Type.Kind == model.KindTable {
			tup[i] = subs[si]
			si++
		} else {
			tup[i] = atoms[ai]
			ai++
		}
	}
	return tup, nil
}

// Delete removes the complex object, chasing every pointer chain to
// free the linked tuples individually — there is no page-level
// shortcut in the "on top" design.
func (s *Store) Delete(root page.TID) error {
	return s.deleteLevel(s.tt, root)
}

func (s *Store) deleteLevel(tt *model.TableType, tid page.TID) error {
	raw, err := s.st.Read(tid)
	if err != nil {
		return err
	}
	_, children, _, err := decodeTuple(tt, raw)
	if err != nil {
		return err
	}
	for gi, ti := range tt.TableIndexes() {
		sub := tt.Attrs[ti].Type.Table
		cur := children[gi]
		for !cur.Nil() {
			raw, err := s.st.Read(cur)
			if err != nil {
				return err
			}
			_, _, sibling, err := decodeTuple(sub, raw)
			if err != nil {
				return err
			}
			if err := s.deleteLevel(sub, cur); err != nil {
				return err
			}
			cur = sibling
		}
	}
	return s.st.Delete(tid)
}

// AppendMember prepends a new member to a subtable of the complex
// object: attrPath names the table-valued attribute indexes from the
// top level down to the target subtable, positions the member
// ordinals walked at each intermediate level. The new member's linked
// tuples go wherever the flat layer finds room — over time this
// scatters a growing object across the shared table pages, the
// clustering problem §4.1's local address spaces avoid.
func (s *Store) AppendMember(root page.TID, attrPath []int, positions []int, member model.Tuple) error {
	if len(attrPath) != len(positions)+1 {
		return fmt.Errorf("lorie: attrPath needs one more entry than positions")
	}
	// Walk to the tuple owning the target subtable.
	cur, curTT := root, s.tt
	for i, attr := range attrPath[:len(attrPath)-1] {
		raw, err := s.st.Read(cur)
		if err != nil {
			return err
		}
		_, children, _, err := decodeTuple(curTT, raw)
		if err != nil {
			return err
		}
		gi := giOf(curTT, attr)
		sub := curTT.Attrs[attr].Type.Table
		next := children[gi]
		for p := 0; p < positions[i]; p++ {
			raw, err := s.st.Read(next)
			if err != nil {
				return err
			}
			_, _, sibling, err := decodeTuple(sub, raw)
			if err != nil {
				return err
			}
			next = sibling
		}
		if next.Nil() {
			return fmt.Errorf("lorie: position %d out of range", positions[i])
		}
		cur, curTT = next, sub
	}
	last := attrPath[len(attrPath)-1]
	gi := giOf(curTT, last)
	sub := curTT.Attrs[last].Type.Table
	if err := model.Conform(sub, member); err != nil {
		return err
	}
	raw, err := s.st.Read(cur)
	if err != nil {
		return err
	}
	atoms, children, sibling, err := decodeTuple(curTT, raw)
	if err != nil {
		return err
	}
	newChild, err := s.insertLevel(sub, member, children[gi])
	if err != nil {
		return err
	}
	children[gi] = newChild
	// Rewrite the owner tuple with the new first-child pointer (same
	// size: the pointer attributes are fixed width).
	rec, err := encodeAtomsAndPtrs(atoms, children, sibling)
	if err != nil {
		return err
	}
	return s.st.Update(cur, rec)
}

func giOf(tt *model.TableType, attr int) int {
	gi := 0
	for _, ti := range tt.TableIndexes() {
		if ti == attr {
			return gi
		}
		gi++
	}
	return -1
}

func encodeAtomsAndPtrs(atoms []model.Value, children []page.TID, sibling page.TID) ([]byte, error) {
	body, err := model.EncodeAtoms(atoms)
	if err != nil {
		return nil, err
	}
	for _, c := range children {
		body = page.AppendTID(body, c)
	}
	return page.AppendTID(body, sibling), nil
}
