package lorie

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/model"
	"repro/internal/page"
	"repro/internal/segment"
	"repro/internal/subtuple"
	"repro/internal/testdata"
)

func newStore(t testing.TB) (*Store, *buffer.Pool) {
	t.Helper()
	pool := buffer.NewPool(256)
	pool.Register(1, segment.NewMemStore())
	st := subtuple.New(subtuple.Config{Pool: pool, Seg: 1})
	return New(st, testdata.DepartmentsType()), pool
}

func TestRoundTrip(t *testing.T) {
	s, _ := newStore(t)
	for _, want := range testdata.Departments().Tuples {
		root, err := s.Insert(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Read(root)
		if err != nil {
			t.Fatal(err)
		}
		if !model.TupleEqual(got, want) {
			t.Errorf("round trip mismatch for department %v", want[0])
		}
	}
}

// Sibling chains must preserve subtable order (the insert builds them
// in reverse).
func TestSiblingOrder(t *testing.T) {
	s, _ := newStore(t)
	root, err := s.Insert(testdata.Departments().Tuples[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(root)
	if err != nil {
		t.Fatal(err)
	}
	projs := got[2].(*model.Table)
	if projs.Tuples[0][1].(model.Str) != "CGA" || projs.Tuples[1][1].(model.Str) != "HEAP" {
		t.Errorf("project order = %v, %v", projs.Tuples[0][1], projs.Tuples[1][1])
	}
}

func TestDelete(t *testing.T) {
	s, _ := newStore(t)
	root, _ := s.Insert(testdata.Departments().Tuples[0])
	if err := s.Delete(root); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(root); err == nil {
		t.Error("read after delete succeeded")
	}
	// All linked tuples must be gone, not just the root.
	n := 0
	s.st.Scan(func(_ page.TID, _ []byte) error { n++; return nil })
	if n != 0 {
		t.Errorf("%d orphaned linked tuples after delete", n)
	}
}

// The structural contrast with AIM-II: reading a whole object chases
// one pointer per subtuple; the access count grows with the object
// size (no Mini Directory batching, no clustering guarantee).
func TestAccessCountGrowsWithObject(t *testing.T) {
	s, pool := newStore(t)
	big := testdata.GenDepartments(testdata.GenConfig{Departments: 1, ProjsPerDept: 10, MembersPerProj: 20, EquipPerDept: 5, Seed: 3})
	root, err := s.Insert(big.Tuples[0])
	if err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	if _, err := s.Read(root); err != nil {
		t.Fatal(err)
	}
	fetches := pool.Stats().Fetches
	// 1 dept + 10 projects + 200 members + 5 equip = 216 tuples, and
	// sibling chasing re-reads each member once more.
	if fetches < 216 {
		t.Errorf("whole-object read did only %d fetches; pointer chasing should touch every linked tuple", fetches)
	}
}

// AppendMember grows a subtable in place and preserves the existing
// chain.
func TestAppendMember(t *testing.T) {
	s, _ := newStore(t)
	root, err := s.Insert(testdata.Departments().Tuples[0])
	if err != nil {
		t.Fatal(err)
	}
	// Append a member to project 1 (HEAP): attrPath PROJECTS(2) then
	// MEMBERS(2), position 1.
	member := model.Tuple{model.Int(70001), model.Str("Consultant")}
	if err := s.AppendMember(root, []int{2, 2}, []int{1}, member); err != nil {
		t.Fatal(err)
	}
	// Append a whole project at the top level.
	proj := model.Tuple{model.Int(99), model.Str("NEW"), model.NewRelation()}
	if err := s.AppendMember(root, []int{2}, nil, proj); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(root)
	if err != nil {
		t.Fatal(err)
	}
	projs := got[2].(*model.Table)
	if projs.Len() != 3 {
		t.Fatalf("projects = %d, want 3", projs.Len())
	}
	if projs.Tuples[0][1].(model.Str) != "NEW" { // prepended
		t.Errorf("first project = %v", projs.Tuples[0][1])
	}
	found := false
	for _, p := range projs.Tuples {
		if p[1].(model.Str) == "HEAP" {
			if p[2].(*model.Table).Len() != 5 {
				t.Errorf("HEAP members = %d, want 5", p[2].(*model.Table).Len())
			}
			if p[2].(*model.Table).Tuples[0][0].(model.Int) != 70001 {
				t.Errorf("prepended member missing")
			}
			found = true
		}
	}
	if !found {
		t.Error("HEAP lost")
	}
	// Errors.
	if err := s.AppendMember(root, []int{2, 2}, []int{99}, member); err == nil {
		t.Error("out-of-range position accepted")
	}
	if err := s.AppendMember(root, []int{2, 2}, nil, member); err == nil {
		t.Error("mismatched attrPath/positions accepted")
	}
	if err := s.AppendMember(root, []int{2}, nil, model.Tuple{model.Int(1)}); err == nil {
		t.Error("malformed member accepted")
	}
}
