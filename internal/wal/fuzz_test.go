package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"testing"
)

// memFile is an in-memory wal.File for tests and fuzzing: it keeps
// the log bytes addressable so properties can be checked against the
// raw input.
type memFile struct {
	b []byte
}

func (m *memFile) Write(p []byte) (int, error) { m.b = append(m.b, p...); return len(p), nil }

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.b)) {
		return 0, io.EOF
	}
	n := copy(p, m.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memFile) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		return off, nil
	case io.SeekEnd:
		return int64(len(m.b)) + off, nil
	}
	return 0, fmt.Errorf("memFile: unsupported whence %d", whence)
}

func (m *memFile) Truncate(size int64) error {
	if size < int64(len(m.b)) {
		m.b = m.b[:size]
	}
	return nil
}

func (m *memFile) Sync() error  { return nil }
func (m *memFile) Close() error { return nil }

// sampleLogBytes builds a valid log image for seed corpora.
func sampleLogBytes(tb testing.TB, recs []*Record) []byte {
	mf := &memFile{}
	l, err := OpenFile(mf)
	if err != nil {
		tb.Fatal(err)
	}
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			tb.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		tb.Fatal(err)
	}
	return append([]byte(nil), mf.b...)
}

var sampleRecs = []*Record{
	{Op: OpInsert, Seg: 1, Page: 1, Slot: 0, Payload: []byte("alpha")},
	{Op: OpUpdate, Seg: 1, Page: 1, Slot: 0, Payload: []byte("beta-beta")},
	{Op: OpCommit},
	{Op: OpDelete, Seg: 2, Page: 7, Slot: 3},
	{Op: OpCommit},
}

// FuzzReplay opens arbitrary bytes as a log. Open must never panic,
// and Replay must deliver only complete, CRC-valid records, in
// strictly increasing LSN order, never reaching past the input.
func FuzzReplay(f *testing.F) {
	valid := sampleLogBytes(f, sampleRecs)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(valid[2:])            // misaligned start
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0xFF
	f.Add(corrupt)
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[0:], 1<<31) // absurd length claim
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		mf := &memFile{b: append([]byte(nil), data...)}
		l, err := OpenFile(mf)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		defer l.Close()
		if got := l.End(); got > uint64(len(data)) {
			t.Fatalf("End() = %d beyond input length %d", got, len(data))
		}
		prev := uint64(0)
		err = l.Replay(func(r Record) error {
			if r.LSN <= prev {
				t.Fatalf("LSNs not strictly increasing: %d after %d", r.LSN, prev)
			}
			prev = r.LSN
			end := int(r.LSN-1) + r.Size()
			if end > len(data) {
				t.Fatalf("record [%d, %d) extends past %d input bytes", r.LSN-1, end, len(data))
			}
			body := data[int(r.LSN-1)+recHeader : end]
			if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[r.LSN-1+4:]) {
				t.Fatal("replay delivered a record whose stored CRC does not match")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Replay must absorb arbitrary input cleanly, got: %v", err)
		}
	})
}

// TestTornTailEveryOffset truncates a synced log at every byte offset
// inside its last record and asserts that reopening positions the log
// exactly after the last complete record, drops the torn bytes, and
// replays exactly the complete prefix — the regression test for
// crash-truncated log tails.
func TestTornTailEveryOffset(t *testing.T) {
	full := sampleLogBytes(t, sampleRecs)
	// Byte offset where the last record begins.
	lastStart := len(full) - sampleRecs[len(sampleRecs)-1].Size()
	for cut := lastStart; cut < len(full); cut++ {
		mf := &memFile{b: append([]byte(nil), full[:cut]...)}
		l, err := OpenFile(mf)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if got := l.End(); got != uint64(lastStart) {
			t.Fatalf("cut %d: End() = %d, want %d", cut, got, lastStart)
		}
		if len(mf.b) != lastStart {
			t.Fatalf("cut %d: torn tail not truncated: %d bytes, want %d", cut, len(mf.b), lastStart)
		}
		n := 0
		if err := l.Replay(func(r Record) error { n++; return nil }); err != nil {
			t.Fatalf("cut %d: replay: %v", cut, err)
		}
		if n != len(sampleRecs)-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, n, len(sampleRecs)-1)
		}
		// The log stays appendable after tail repair.
		if _, err := l.Append(&Record{Op: OpCommit}); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("cut %d: sync after repair: %v", cut, err)
		}
		n = 0
		l.Replay(func(Record) error { n++; return nil })
		if n != len(sampleRecs) {
			t.Fatalf("cut %d: after repair+append replayed %d, want %d", cut, n, len(sampleRecs))
		}
		l.Close()
	}
}

// TestTruncateTail covers the recovery-time tail discard: records
// after the truncation point disappear and the log continues from the
// new end.
func TestTruncateTail(t *testing.T) {
	mf := &memFile{}
	l, err := OpenFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	for _, r := range sampleRecs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Keep the first three records (through the first commit).
	keep := (lsns[2] - 1) + uint64(sampleRecs[2].Size())
	if err := l.TruncateTail(keep); err != nil {
		t.Fatal(err)
	}
	if l.End() != keep {
		t.Fatalf("End() = %d after truncate, want %d", l.End(), keep)
	}
	n := 0
	if err := l.Replay(func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d records after truncate, want 3", n)
	}
	// New appends land at the truncation point with consistent LSNs.
	lsn, err := l.Append(&Record{Op: OpInsert, Seg: 3, Page: 1, Payload: []byte("post")})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != keep+1 {
		t.Fatalf("append after truncate at LSN %d, want %d", lsn, keep+1)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	n = 0
	l.Replay(func(Record) error { n++; return nil })
	if n != 4 {
		t.Fatalf("replayed %d records after truncate+append, want 4", n)
	}
}
