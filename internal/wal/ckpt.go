package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/segment"
)

// CheckpointInfo is the payload of an OpCheckpoint record: the state
// a fuzzy checkpoint captured. Recovery does not strictly need it —
// the record's position alone bounds the replay tail, because the
// engine only writes a checkpoint after every dirty page whose LSN
// precedes it has been flushed — but the horizon and the open
// transaction table make the checkpoint auditable by offline tools.
type CheckpointInfo struct {
	// Durable is the durable-LSN horizon at checkpoint time: every
	// log byte below it was fsync-acknowledged before the checkpoint
	// was written.
	Durable uint64
	// OpenTxns are the ids of the transactions open at checkpoint
	// time. Their writes are still buffered in memory (nothing of an
	// uncommitted transaction reaches the log), so recovery ignores
	// them; the table records which commits can still appear in the
	// tail.
	OpenTxns []uint64
}

// Encode serializes the checkpoint payload.
func (ci CheckpointInfo) Encode() []byte {
	b := binary.AppendUvarint(nil, ci.Durable)
	b = binary.AppendUvarint(b, uint64(len(ci.OpenTxns)))
	for _, id := range ci.OpenTxns {
		b = binary.AppendUvarint(b, id)
	}
	return b
}

// DecodeCheckpointInfo parses a CheckpointInfo payload.
func DecodeCheckpointInfo(p []byte) (CheckpointInfo, bool) {
	var ci CheckpointInfo
	durable, n := binary.Uvarint(p)
	if n <= 0 {
		return ci, false
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 || count > uint64(len(p)) {
		return ci, false
	}
	p = p[n:]
	ci.Durable = durable
	for i := uint64(0); i < count; i++ {
		id, n := binary.Uvarint(p)
		if n <= 0 {
			return CheckpointInfo{}, false
		}
		p = p[n:]
		ci.OpenTxns = append(ci.OpenTxns, id)
	}
	return ci, true
}

// WriteCheckpoint appends a checkpoint record and makes it durable.
// In a rolling log the record is placed at the front of a fresh
// segment, so reopen finds it with an O(1) probe of each segment's
// first record; in a single-file log it lands mid-file and reopen
// finds it by scanning. On success the record becomes the new replay
// start and a new full-page-image era begins. The caller must have
// flushed every dirty page first — that ordering, not the payload, is
// what makes the records before the checkpoint dead weight.
func (l *Log) WriteCheckpoint(info CheckpointInfo) (uint64, error) {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.cfg.SegmentBytes > 0 && l.nextLSN > l.active().base {
		if err := l.rollLocked(); err != nil {
			l.mu.Unlock()
			return 0, err
		}
	}
	r := Record{Op: OpCheckpoint, Payload: info.Encode()}
	if _, err := l.appendLocked(&r); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	if err := l.syncLocked(); err != nil {
		// The checkpoint record may be torn on disk; cut it so the log
		// state matches what callers were told. Reopen would reject a
		// torn checkpoint anyway (firstRecordOp checks the CRC).
		derr := l.discardLocked()
		l.mu.Unlock()
		if derr != nil {
			return 0, fmt.Errorf("wal: checkpoint sync failed (%v) and discard failed: %w", err, derr)
		}
		return 0, err
	}
	l.ckptLSN = r.LSN
	l.tailStart = r.LSN - 1
	l.imaged = make(map[imageKey]uint64)
	l.mu.Unlock()
	return r.LSN, nil
}

// Recycle retires log history recovery can no longer need: whole
// segments strictly below the last durable checkpoint, plus any stale
// files a crashed earlier recycle left below the chain. It removes
// oldest-first so a crash mid-way leaves a shorter retained history,
// never a gap. Without a checkpoint nothing is retired. Returns the
// number of files removed.
func (l *Log) Recycle() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.orphans) > 0 {
		if err := l.storage.Remove(l.orphans[0]); err != nil {
			return removed, err
		}
		l.orphans = l.orphans[1:]
		removed++
	}
	if l.ckptLSN == 0 {
		return removed, nil
	}
	// A segment is removable only when the next one starts at or
	// before the checkpoint record, i.e. the whole replay tail lives
	// in the segments that remain.
	for len(l.segs) > 1 && l.segs[1].base <= l.ckptLSN-1 {
		sf := l.segs[0]
		if err := l.storage.Remove(sf.name); err != nil {
			return removed, err
		}
		sf.f.Close()
		l.segs = l.segs[1:]
		removed++
	}
	return removed, nil
}

// EnsureImaged logs a full-page image for the page unless one was
// already logged in the current checkpoint era. The caller passes the
// page content BEFORE applying the operation it is about to log, so
// the image always captures committed pre-statement state (statements
// apply serially; an aborted statement's records — including its
// images — are cut from the log by rollback, which also forgets them
// here so the next toucher re-images). Recovery uses the image to
// rebuild a page it wiped without needing pre-checkpoint history.
func (l *Log) EnsureImaged(seg segment.ID, pageNo uint32, img []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := imageKey{seg: seg, page: pageNo}
	if _, ok := l.imaged[k]; ok {
		return nil
	}
	r := Record{Op: OpPageImage, Seg: seg, Page: pageNo, Payload: img}
	if _, err := l.appendLocked(&r); err != nil {
		return err
	}
	l.imaged[k] = r.LSN
	return nil
}
