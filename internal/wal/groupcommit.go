package wal

import (
	"errors"
	"time"
)

// ErrCommitLost reports that a commit record was physically cut from
// the log before it ever became durable: a concurrent statement
// rollback discarded the unflushed suffix the record lived in. The
// commit did not happen — its effects are rolled back with the
// failing statement's — so the caller sees an ordinary commit error,
// never a silently dropped acknowledgement.
var ErrCommitLost = errors.New("wal: commit discarded before becoming durable")

// AppendCommit appends a commit record and returns the log position
// that must become durable for the commit to count, plus the
// truncation epoch observed at append time. The caller releases its
// locks and then calls WaitDurable(end, epoch, ...) — the split is
// what lets concurrent committers share one fsync.
func (l *Log) AppendCommit(payload []byte) (end, epoch uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := Record{Op: OpCommit, Payload: payload}
	if _, err := l.appendLocked(&r); err != nil {
		return 0, 0, err
	}
	return l.nextLSN, l.epoch.Load(), nil
}

// WaitDurable blocks until the log is durable through end, using
// leader/follower group commit: the first waiter through the leader
// lock issues one fsync that covers every record appended before it —
// including the other waiters' commit records, which were appended
// before they started waiting. With maxWait > 0 a leader that sees
// other waiters pending dallies briefly so committers arriving a
// moment later join the same fsync; a lone committer never waits.
//
// If the truncation epoch changed while waiting, the commit record
// was cut by a concurrent rollback before it was flushed and
// ErrCommitLost is returned. The check order (durable first) makes
// false losses impossible: once flushed covers end, nothing in live
// operation cuts below it.
func (l *Log) WaitDurable(end, epoch uint64, maxWait time.Duration) error {
	for {
		if l.flushed.Load() >= end {
			return nil
		}
		if l.epoch.Load() != epoch {
			return ErrCommitLost
		}
		l.waiters.Add(1)
		l.syncMu.Lock()
		if l.flushed.Load() >= end {
			l.syncMu.Unlock()
			l.waiters.Add(-1)
			return nil
		}
		if l.epoch.Load() != epoch {
			l.syncMu.Unlock()
			l.waiters.Add(-1)
			return ErrCommitLost
		}
		// This goroutine is the leader. Give stragglers a moment to
		// append their commits, then sync once for the whole batch.
		if maxWait > 0 && l.waiters.Load() > 1 {
			time.Sleep(maxWait)
		}
		err := l.syncUnderLeader()
		l.syncMu.Unlock()
		l.waiters.Add(-1)
		if err != nil {
			// An overlapping earlier sync may have covered our record
			// before this one failed: durable is durable.
			if l.flushed.Load() >= end {
				return nil
			}
			return err
		}
	}
}

// AbandonCommit resolves a commit whose durability wait failed. Under
// the leader lock — so no concurrent fsync can change the answer mid
// decision — it re-checks whether some overlapping sync made the
// record durable after all (lost=false: the commit stands and the
// caller must report success), and otherwise cuts the log back to the
// flushed boundary so the doomed record can never become durable
// later (lost=true: the caller rolls back). Commits of other waiters
// that get cut with it observe the epoch change and fail with
// ErrCommitLost, keeping acknowledgements truthful all around.
func (l *Log) AbandonCommit(end uint64) (lost bool, err error) {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.flushed.Load() >= end {
		return false, nil
	}
	if err := l.discardLocked(); err != nil {
		return true, err
	}
	return true, nil
}
