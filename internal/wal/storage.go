package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/segment"
)

// ErrMissingSegment reports that the on-disk log is not a usable
// chain: a segment recovery needs is gone (recycled too eagerly,
// deleted by hand, or lost to filesystem damage) and no complete
// checkpoint exists to restart the chain after the gap. It is a typed
// error so callers can distinguish "the log is gone" from silent
// replay of a truncated history.
var ErrMissingSegment = errors.New("wal: missing log segment")

// Storage is the namespace a segmented log lives in: a flat set of
// named files. DirStorage maps it onto a directory; crash-simulation
// harnesses substitute fault-injecting implementations so segment
// creation and retirement are themselves crash points.
type Storage interface {
	// Open opens (or creates) the named segment file.
	Open(name string) (File, error)
	// Remove deletes the named segment file.
	Remove(name string) error
	// List returns the names of the existing segment files, in any
	// order.
	List() ([]string, error)
}

// legacySegName is the name of the base-0 segment. It is the same
// name the pre-segmented log used for its single file, so a database
// written before segmenting opens as a one-segment chain.
const legacySegName = "wal.log"

const segSuffix = ".log"

// segName returns the file name of the segment whose first byte is
// the global log offset base. Rolled segments carry their base offset
// in the name so the chain can be rebuilt from a directory listing.
func segName(base uint64) string {
	if base == 0 {
		return legacySegName
	}
	return fmt.Sprintf("wal-%020d%s", base, segSuffix)
}

// parseSegName inverts segName; ok is false for files that are not
// log segments.
func parseSegName(name string) (base uint64, ok bool) {
	if name == legacySegName {
		return 0, true
	}
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), segSuffix)
	if len(digits) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(digits, 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// DirStorage is the production Storage: segment files in a directory.
type DirStorage struct {
	dir string
}

// NewDirStorage returns a Storage over dir.
func NewDirStorage(dir string) *DirStorage { return &DirStorage{dir: dir} }

func (d *DirStorage) Open(name string) (File, error) {
	return OpenPathFile(filepath.Join(d.dir, name))
}

func (d *DirStorage) Remove(name string) error {
	return os.Remove(filepath.Join(d.dir, name))
}

func (d *DirStorage) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", d.dir, err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// singleFileStorage adapts one already-open File to the Storage
// interface: the chain is exactly that file, nothing can be created
// or removed. It backs the OpenFile/Open compatibility paths (tests
// and harnesses that hand the log a single fault-injected file); a
// log over it never rolls and never recycles.
type singleFileStorage struct {
	f    File
	used bool
}

func (s *singleFileStorage) Open(name string) (File, error) {
	if name != legacySegName || s.used {
		return nil, fmt.Errorf("wal: single-file log cannot open segment %q", name)
	}
	s.used = true
	return s.f, nil
}

func (s *singleFileStorage) Remove(name string) error {
	return fmt.Errorf("wal: single-file log cannot remove segment %q", name)
}

func (s *singleFileStorage) List() ([]string, error) {
	return []string{legacySegName}, nil
}

// Config tunes a segmented log.
type Config struct {
	// SegmentBytes rolls the log to a new segment file when appending
	// a record would grow the active segment past this size. Zero
	// disables rolling (single-file behavior). A record larger than
	// SegmentBytes is written whole into a fresh segment of its own —
	// records never span segment files.
	SegmentBytes int64
	// Retry wraps every segment file so transient faults are retried.
	Retry segment.RetryPolicy
}

// OpenStorage opens a segmented log over st. It lists the segments,
// picks the replay start — the newest segment whose first record is a
// complete checkpoint, falling back to older checkpoints if the
// newest is torn, or to segment zero when no checkpoint exists —
// verifies the chain is contiguous from there, scans the tail for the
// end of the last complete record, and truncates torn bytes. Segments
// below the replay chain that are no longer contiguous (left behind
// by a crash during recycling) are ignored and deleted on the next
// Recycle. A gap inside the replay chain, or a missing segment zero
// with no checkpoint to restart from, is ErrMissingSegment.
func OpenStorage(st Storage, cfg Config) (*Log, error) {
	names, err := st.List()
	if err != nil {
		return nil, err
	}
	bases := make(map[string]uint64, len(names))
	var segNames []string
	for _, name := range names {
		base, ok := parseSegName(name)
		if !ok {
			continue
		}
		bases[name] = base
		segNames = append(segNames, name)
	}
	sort.Slice(segNames, func(i, j int) bool { return bases[segNames[i]] < bases[segNames[j]] })
	if len(segNames) == 0 {
		segNames = []string{legacySegName}
		bases[legacySegName] = 0
	}

	var segs []*segFile
	fail := func(err error) (*Log, error) {
		for _, sf := range segs {
			sf.f.Close()
		}
		return nil, err
	}
	for _, name := range segNames {
		f, err := st.Open(name)
		if err != nil {
			return fail(err)
		}
		f = WithRetry(f, cfg.Retry)
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return fail(err)
		}
		segs = append(segs, &segFile{name: name, base: bases[name], size: size, f: f})
	}

	// Replay start: the newest segment opening with a complete
	// checkpoint record. A torn checkpoint never becomes the start —
	// firstRecordOp rejects it and the probe falls back to the
	// previous one.
	si := -1
	for i := len(segs) - 1; i >= 0; i-- {
		op, ok, err := firstRecordOp(segs[i].f)
		if err != nil {
			return fail(fmt.Errorf("wal: probing %s for a checkpoint: %w", segs[i].name, err))
		}
		if ok && op == OpCheckpoint {
			si = i
			break
		}
	}
	if si == -1 {
		if segs[0].base != 0 {
			return fail(fmt.Errorf("%w: no checkpoint found and segment at offset 0 is gone (oldest is %s)", ErrMissingSegment, segs[0].name))
		}
		si = 0
	}
	// The chain must be contiguous from the replay start forward.
	for j := si + 1; j < len(segs); j++ {
		if segs[j].base != segs[j-1].base+uint64(segs[j-1].size) {
			return fail(fmt.Errorf("%w: gap between %s (ends at %d) and %s (starts at %d)",
				ErrMissingSegment, segs[j-1].name, segs[j-1].base+uint64(segs[j-1].size), segs[j].name, segs[j].base))
		}
	}
	// Retain contiguous history below the start (not yet recycled);
	// anything older with a gap is an orphan a crashed recycle left
	// behind.
	k := si
	for k > 0 && segs[k-1].base+uint64(segs[k-1].size) == segs[k].base {
		k--
	}
	var orphans []string
	for _, sf := range segs[:k] {
		sf.f.Close()
		orphans = append(orphans, sf.name)
	}
	segs = segs[k:]
	si -= k

	l := &Log{
		storage: st,
		cfg:     cfg,
		segs:    segs,
		orphans: orphans,
		imaged:  make(map[imageKey]uint64),
	}
	last := segs[len(segs)-1]
	l.nextLSN = last.base + uint64(last.size)
	l.w = bufio.NewWriter(last.f)

	// Scan the tail for the end of the last complete record and the
	// last complete checkpoint.
	end := segs[si].base
	var ckpt uint64
	err = replayReader(chainReader(segs, segs[si].base), segs[si].base, func(r Record) error {
		end = (r.LSN - 1) + uint64(r.Size())
		if r.Op == OpCheckpoint {
			ckpt = r.LSN
		}
		return nil
	})
	if err != nil && !errors.Is(err, errTorn) {
		return fail(err)
	}
	if err := l.truncateTailLocked(end); err != nil {
		return fail(err)
	}
	l.flushed.Store(end)
	l.ckptLSN = ckpt
	l.tailStart = segs[0].base
	if ckpt > 0 {
		l.tailStart = ckpt - 1
	}
	return l, nil
}

// OpenDir opens a segmented log stored as wal.log / wal-*.log files
// inside dir.
func OpenDir(dir string, cfg Config) (*Log, error) {
	return OpenStorage(NewDirStorage(dir), cfg)
}
