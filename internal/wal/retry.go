package wal

import (
	"repro/internal/segment"
)

// retryFile wraps a File, retrying transient faults (see
// segment.TransientError) on every operation. Write and ReadAt resume
// partial transfers so a fault in the middle of a record cannot
// duplicate bytes already accepted by the backing file.
type retryFile struct {
	f File
	p segment.RetryPolicy
}

// WithRetry wraps f so transient faults are retried per the policy. A
// policy with Tries <= 1 returns f unchanged.
func WithRetry(f File, p segment.RetryPolicy) File {
	if p.Tries <= 1 {
		return f
	}
	return &retryFile{f: f, p: p}
}

func (r *retryFile) Write(p []byte) (int, error) {
	written := 0
	err := r.p.Do(func() error {
		n, werr := r.f.Write(p[written:])
		written += n
		return werr
	})
	return written, err
}

func (r *retryFile) ReadAt(p []byte, off int64) (int, error) {
	read := 0
	err := r.p.Do(func() error {
		if read == len(p) {
			return nil
		}
		n, rerr := r.f.ReadAt(p[read:], off+int64(read))
		read += n
		return rerr
	})
	return read, err
}

func (r *retryFile) Seek(offset int64, whence int) (int64, error) {
	var pos int64
	err := r.p.Do(func() error {
		var serr error
		pos, serr = r.f.Seek(offset, whence)
		return serr
	})
	return pos, err
}

func (r *retryFile) Truncate(size int64) error {
	return r.p.Do(func() error { return r.f.Truncate(size) })
}

func (r *retryFile) Sync() error {
	return r.p.Do(func() error { return r.f.Sync() })
}

func (r *retryFile) Close() error { return r.f.Close() }
