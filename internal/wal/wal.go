// Package wal implements a write-ahead log with record-level redo
// logging. Every subtuple operation (insert, update, delete) is
// logged before it is applied to a page; dirty pages may only be
// written back after the log records that dirtied them are on stable
// storage (enforced through the buffer pool's flush hook). Recovery
// replays the log in order onto the pages, applying a record only
// when the page's LSN shows it has not been applied yet, and stops at
// the last commit record.
//
// The log is a chain of bounded segment files over a Storage
// namespace. LSNs are global byte offsets across the whole chain, so
// rolling to a new segment changes nothing for the record format or
// for page LSNs; records never span segment files, which keeps every
// segment independently scannable and lets whole segments below the
// checkpoint horizon be retired (Recycle). Checkpoint records are the
// recovery starting points: WriteCheckpoint places one at the front
// of a fresh segment and ReplayTail streams only the records from the
// last complete checkpoint onward.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/segment"
)

// Op is the kind of a log record.
type Op byte

// Log record kinds. Slot-level physical redo operations plus
// transaction control and recovery-bound records.
const (
	OpInsert Op = iota + 1
	OpUpdate
	OpDelete
	OpCommit
	OpCheckpoint
	// OpPageImage carries a full page image of the committed
	// pre-statement state of a page, logged once per page per
	// checkpoint era at the page's first modification. Recovery uses
	// it to rebuild pages it had to wipe without replaying history
	// from before the checkpoint.
	OpPageImage
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	case OpCommit:
		return "COMMIT"
	case OpCheckpoint:
		return "CHECKPOINT"
	case OpPageImage:
		return "PAGEIMAGE"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// Record is one log entry. For page operations Seg/Page/Slot address
// the affected slot and Payload carries the full record image (empty
// for deletes).
type Record struct {
	LSN     uint64 // byte offset of the record in the log file
	Op      Op
	Seg     segment.ID
	Page    uint32
	Slot    uint16
	Payload []byte
}

// CommitPayload encodes the transaction id and commit timestamp a
// transaction's OpCommit record carries. Recovery does not need it —
// a commit record's mere presence makes the preceding operations
// durable — but the stamps let offline tools (and tests) attribute
// each committed batch to its transaction.
func CommitPayload(txn uint64, ts int64) []byte {
	b := binary.AppendUvarint(nil, txn)
	return binary.AppendVarint(b, ts)
}

// DecodeCommitPayload parses a CommitPayload. A nil/empty payload
// (the pre-transaction commit format) decodes as (0, 0, true).
func DecodeCommitPayload(p []byte) (txn uint64, ts int64, ok bool) {
	if len(p) == 0 {
		return 0, 0, true
	}
	txn, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, false
	}
	ts, m := binary.Varint(p[n:])
	if m <= 0 {
		return 0, 0, false
	}
	return txn, ts, true
}

// File is the backing storage of a log segment: an append-position
// writer with random-access reads. *os.File implements it;
// crash-simulation harnesses substitute fault-injecting
// implementations.
type File interface {
	io.Writer
	io.ReaderAt
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// segFile is one segment of the chain: a file whose first byte is the
// global log offset base.
type segFile struct {
	name string
	base uint64
	size int64 // bytes in the file (for the active segment, maintained lazily)
	f    File
}

// imageKey identifies a page for the once-per-era full-page-image
// bookkeeping.
type imageKey struct {
	seg  segment.ID
	page uint32
}

// Log is an append-only write-ahead log backed by a chain of segment
// files.
type Log struct {
	mu      sync.Mutex
	storage Storage
	cfg     Config
	segs    []*segFile // ascending base; the last one is the active segment
	orphans []string   // stale files below the chain, deleted on the next Recycle
	w       *bufio.Writer
	nextLSN uint64 // == total chain size including buffered bytes

	// ckptLSN is the LSN of the last durable checkpoint record (0:
	// none); tailStart is the byte offset recovery replays from.
	ckptLSN   uint64
	tailStart uint64
	// imaged maps pages to the LSN of their full-page image in the
	// current checkpoint era; entries are pruned when truncation cuts
	// the image and cleared when a checkpoint starts a new era.
	imaged map[imageKey]uint64

	// flushed is the LSN boundary known to be on stable storage. It is
	// written under mu but read atomically, so the buffer pool's
	// write-ahead check (EnsureDurable) can confirm an already-durable
	// LSN without serializing concurrent evictions on the log mutex.
	flushed atomic.Uint64
	// epoch counts truncations that discarded appended-but-unflushed
	// bytes. A group-commit waiter snapshots it at append; a change
	// while waiting means its record was physically cut (statement
	// rollback), so the commit is lost, not merely slow.
	epoch atomic.Uint64
	// syncs counts fsyncs of the log; the group-commit benchmark reads
	// it to show batching (commits per fsync).
	syncs atomic.Uint64

	// syncMu serializes group-commit leaders and excludes them while
	// DiscardUnflushed cuts the log. Lock order: syncMu before mu.
	syncMu  sync.Mutex
	waiters atomic.Int32

	// cuts and tailCh serve tail-following replication readers (see
	// tail.go): cuts is a suffix-min stack of truncation points so a
	// cursor can regress past a cut, tailCh is the lazily-created
	// broadcast channel closed whenever the durable horizon advances
	// or the chain is reshaped. Both are guarded by mu.
	cuts   []tailCut
	tailCh chan struct{}
}

// Open opens (or creates) a single-file log at path and positions
// appends after the last complete record. The log never rolls; it is
// the compatibility constructor for callers that manage one file.
func Open(path string) (*Log, error) {
	f, err := OpenPathFile(path)
	if err != nil {
		return nil, err
	}
	return OpenFile(f)
}

// OpenPathFile opens (or creates) the backing file at path without
// building a Log over it; callers that want to interpose a wrapper
// (retry, fault injection) between the file and the Log use it with
// OpenFile.
func OpenPathFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return f, nil
}

// OpenFile opens a log over an already-open backing file and positions
// appends after the last complete record (truncating a torn tail).
// The log never rolls or recycles: the chain is exactly this file.
func OpenFile(f File) (*Log, error) {
	return OpenStorage(&singleFileStorage{f: f}, Config{})
}

// header: totalLen uint32 | crc uint32; body: op 1 | seg 2 | page 4 |
// slot 2 | payloadLen uint32 | payload.
const recHeader = 8

// Size returns the record's on-disk length including the header.
func (r *Record) Size() int { return recHeader + 13 + len(r.Payload) }

func recordSize(r *Record) int { return r.Size() }

func (l *Log) active() *segFile { return l.segs[len(l.segs)-1] }

// Append writes the record to the log buffer and returns its LSN. The
// record is durable only after Sync.
func (l *Log) Append(r *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(r)
}

func (l *Log) appendLocked(r *Record) (uint64, error) {
	body := make([]byte, 0, 13+len(r.Payload))
	body = append(body, byte(r.Op))
	body = binary.LittleEndian.AppendUint16(body, uint16(r.Seg))
	body = binary.LittleEndian.AppendUint32(body, r.Page)
	body = binary.LittleEndian.AppendUint16(body, r.Slot)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(r.Payload)))
	body = append(body, r.Payload...)

	// Roll before the record would cross the segment bound, so records
	// never span files. An oversized record gets a fresh segment of
	// its own.
	size := uint64(recHeader + len(body))
	if l.cfg.SegmentBytes > 0 && l.nextLSN > l.active().base &&
		int64(l.nextLSN-l.active().base)+int64(size) > l.cfg.SegmentBytes {
		if err := l.rollLocked(); err != nil {
			return 0, err
		}
	}

	var hdr [recHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := l.w.Write(body); err != nil {
		return 0, err
	}
	// LSNs are 1-based (file offset + 1) so that a page LSN of zero
	// always means "nothing applied yet".
	r.LSN = l.nextLSN + 1
	l.nextLSN += size
	return r.LSN, nil
}

// rollLocked closes out the active segment (flushing and syncing it,
// so a later segment always implies a complete predecessor) and opens
// the next one at the current append position.
func (l *Log) rollLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.active().f.Sync(); err != nil {
		return err
	}
	l.flushed.Store(l.nextLSN)
	l.syncs.Add(1)
	name := segName(l.nextLSN)
	f, err := l.storage.Open(name)
	if err != nil {
		return err
	}
	f = WithRetry(f, l.cfg.Retry)
	// A crashed recycle or truncation can leave a stale file under the
	// same name; start clean.
	if err := f.Truncate(0); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.active().size = int64(l.nextLSN - l.active().base)
	l.segs = append(l.segs, &segFile{name: name, base: l.nextLSN, f: f})
	l.w.Reset(f)
	l.notifyTailLocked()
	return nil
}

// Sync forces all appended records to stable storage.
func (l *Log) Sync() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.syncUnderLeader()
}

// syncUnderLeader makes all appended records durable. The caller
// holds syncMu — which every truncation path (DiscardUnflushed,
// AbandonCommit, checkpoint failure) also takes, so the captured file
// cannot be cut mid-sync. The buffered writer is flushed under the
// log mutex, but the device sync itself runs without it: appends —
// and therefore whole statements — proceed while the fsync is in
// flight, which is what lets group commit pipeline. flushed advances
// by CAS-max because a concurrent segment roll also publishes it.
func (l *Log) syncUnderLeader() error {
	l.mu.Lock()
	if err := l.w.Flush(); err != nil {
		l.mu.Unlock()
		return err
	}
	f := l.active().f
	target := l.nextLSN
	l.mu.Unlock()
	if err := f.Sync(); err != nil {
		return err
	}
	for {
		cur := l.flushed.Load()
		if cur >= target || l.flushed.CompareAndSwap(cur, target) {
			break
		}
	}
	l.syncs.Add(1)
	l.mu.Lock()
	l.notifyTailLocked()
	l.mu.Unlock()
	return nil
}

// syncLocked is the fully-locked variant for callers that need the
// sync atomic with other log-state changes (checkpointing, close).
func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.active().f.Sync(); err != nil {
		return err
	}
	l.flushed.Store(l.nextLSN)
	l.syncs.Add(1)
	l.notifyTailLocked()
	return nil
}

// SyncedThrough returns the LSN boundary known durable; used by the
// buffer pool flush hook to enforce the write-ahead rule.
func (l *Log) SyncedThrough() uint64 {
	return l.flushed.Load()
}

// End returns the log's append position (one past the LSN of the last
// appended record); every valid page LSN is strictly below End()+1.
func (l *Log) End() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// SegmentCount returns the number of retained segment files.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// CheckpointLSN returns the LSN of the last durable checkpoint record
// (0 when none exists).
func (l *Log) CheckpointLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptLSN
}

// TailStart returns the byte offset recovery replays from: the start
// of the last complete checkpoint record, or the start of the oldest
// retained segment when no checkpoint exists.
func (l *Log) TailStart() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tailStart
}

// Syncs returns the number of fsyncs the log has issued.
func (l *Log) Syncs() uint64 { return l.syncs.Load() }

// EnsureDurable syncs the log if lsn is not yet durable. The
// already-durable check is a lock-free atomic load: dirty-page
// evictions from independent buffer shards whose LSNs are long since
// synced confirm the write-ahead rule without touching the log mutex.
func (l *Log) EnsureDurable(lsn uint64) error {
	if lsn < l.flushed.Load() {
		return nil
	}
	return l.Sync()
}

// TruncateTail discards every record at or beyond the byte offset
// off. Recovery uses it to drop the records of statements that never
// committed: if they stayed in the log, a commit record appended by
// a later statement would retroactively "commit" them, resurrecting
// the aborted effects on the next recovery. Whole segments above the
// cut are removed (newest first, so a crash mid-way never leaves a
// gap in the chain).
func (l *Log) TruncateTail(off uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncateTailLocked(off)
}

func (l *Log) truncateTailLocked(off uint64) error {
	if off >= l.nextLSN {
		return nil
	}
	if off < l.segs[0].base {
		off = l.segs[0].base
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	for len(l.segs) > 1 && l.active().base >= off {
		sf := l.active()
		sf.f.Close()
		if err := l.storage.Remove(sf.name); err != nil {
			return err
		}
		l.segs = l.segs[:len(l.segs)-1]
	}
	a := l.active()
	if err := a.f.Truncate(int64(off - a.base)); err != nil {
		return err
	}
	if _, err := a.f.Seek(int64(off-a.base), io.SeekStart); err != nil {
		return err
	}
	a.size = int64(off - a.base)
	l.nextLSN = off
	l.epoch.Add(1)
	l.noteCutLocked(off)
	if l.flushed.Load() > off {
		l.flushed.Store(off)
	}
	if l.ckptLSN > off {
		l.ckptLSN = 0
		l.tailStart = l.segs[0].base
	}
	for k, lsn := range l.imaged {
		if lsn > off {
			delete(l.imaged, k)
		}
	}
	l.w.Reset(a.f)
	return nil
}

// DiscardUnflushed cuts the log back to the last boundary a Sync
// acknowledged: it drops the append buffer (partial or complete
// records that never reached the file, plus any sticky write error a
// failed flush left in the buffered writer) and truncates the file
// over everything written but never fsync-acknowledged. Statement
// abort uses it: every successful statement ends with an acknowledged
// commit sync, so everything past the flushed boundary belongs to the
// failed statement — crucially including a complete commit record
// whose own fsync failed, which must not count as committed once the
// statement has reported failure. It takes the group-commit leader
// lock first, so no concurrent committer can fsync the doomed bytes
// while the cut is in progress.
func (l *Log) DiscardUnflushed() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.discardLocked()
}

func (l *Log) discardLocked() error {
	a := l.active()
	l.w.Reset(a.f)
	// Unflushed bytes only ever live in the active segment: rolling
	// syncs the predecessor before the new segment accepts a byte.
	flushed := l.flushed.Load()
	cut := l.nextLSN > flushed
	if err := a.f.Truncate(int64(flushed - a.base)); err != nil {
		return err
	}
	if _, err := a.f.Seek(int64(flushed-a.base), io.SeekStart); err != nil {
		return err
	}
	a.size = int64(flushed - a.base)
	l.nextLSN = flushed
	if cut {
		l.epoch.Add(1)
		l.noteCutLocked(flushed)
		for k, lsn := range l.imaged {
			if lsn > flushed {
				delete(l.imaged, k)
			}
		}
	}
	return nil
}

var errTorn = errors.New("wal: torn record at end of log")

// chainReader returns a reader over the chain's bytes from global
// offset start; sizes must be current for every segment.
func chainReader(segs []*segFile, start uint64) io.Reader {
	var parts []io.Reader
	for _, sf := range segs {
		end := sf.base + uint64(sf.size)
		if end <= start {
			continue
		}
		from := int64(0)
		if start > sf.base {
			from = int64(start - sf.base)
		}
		parts = append(parts, io.NewSectionReader(sf.f, from, int64(end-sf.base)-from))
	}
	return io.MultiReader(parts...)
}

// readerFrom prepares a snapshot reader from global offset off; the
// append buffer is flushed so buffered records are visible.
func (l *Log) readerFrom(off uint64) (io.Reader, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return nil, err
	}
	a := l.active()
	a.size = int64(l.nextLSN - a.base)
	segs := append([]*segFile(nil), l.segs...)
	return chainReader(segs, off), nil
}

// Replay streams every complete record of the retained chain in LSN
// order. After recycling this starts at the oldest retained segment,
// not offset zero; ReplayTail starts at the last checkpoint.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	start := l.segs[0].base
	l.mu.Unlock()
	return l.replayFrom(start, fn)
}

// ReplayTail streams the records recovery must consider: from the
// last complete checkpoint record (inclusive) to the end of the log.
func (l *Log) ReplayTail(fn func(Record) error) error {
	l.mu.Lock()
	start := l.tailStart
	if start < l.segs[0].base {
		start = l.segs[0].base
	}
	l.mu.Unlock()
	return l.replayFrom(start, fn)
}

// TailRecords counts the records a reopen would replay; the
// recovery-bound tests assert it depends on the tail, not on the
// total history length.
func (l *Log) TailRecords() (int, error) {
	n := 0
	if err := l.ReplayTail(func(Record) error { n++; return nil }); err != nil {
		return 0, err
	}
	return n, nil
}

func (l *Log) replayFrom(off uint64, fn func(Record) error) error {
	r, err := l.readerFrom(off)
	if err != nil {
		return err
	}
	err = replayReader(r, off, fn)
	if errors.Is(err, errTorn) {
		return nil
	}
	return err
}

// replayReader decodes complete records from r, whose first byte is
// the global log offset start, stopping with errTorn at a torn or
// corrupt tail.
func replayReader(r io.Reader, start uint64, fn func(Record) error) error {
	br := bufio.NewReader(r)
	pos := start
	for {
		var hdr [recHeader]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return errTorn
			}
			// A real I/O error must not masquerade as a torn tail:
			// recovery truncates at the torn point, and doing that on a
			// transient read failure would cut off committed records.
			return fmt.Errorf("wal: read log at offset %d: %w", pos, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n < 13 || n > 1<<26 {
			return errTorn
		}
		// Read the body incrementally so a corrupt length claim cannot
		// force a huge up-front allocation.
		body, err := readExact(br, int(n))
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return errTorn
			}
			return fmt.Errorf("wal: read log at offset %d: %w", pos, err)
		}
		if crc32.ChecksumIEEE(body) != crc {
			return errTorn
		}
		rec := Record{
			LSN:  pos + 1,
			Op:   Op(body[0]),
			Seg:  segment.ID(binary.LittleEndian.Uint16(body[1:])),
			Page: binary.LittleEndian.Uint32(body[3:]),
			Slot: binary.LittleEndian.Uint16(body[7:]),
		}
		plen := binary.LittleEndian.Uint32(body[9:])
		if int(plen) != len(body)-13 {
			return errTorn
		}
		rec.Payload = body[13:]
		if err := fn(rec); err != nil {
			return err
		}
		pos += uint64(recHeader + n)
	}
}

// firstRecordOp reads the op of the first record in a segment file,
// verifying the record is complete (CRC included); ok is false for an
// empty, torn, or corrupt front. A genuine read error is returned as
// such — only a short file demotes to ok=false, so a transient I/O
// fault can never silently move the replay start.
func firstRecordOp(f File) (Op, bool, error) {
	var hdr [recHeader]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, false, nil
		}
		return 0, false, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n < 13 || n > 1<<26 {
		return 0, false, nil
	}
	body := make([]byte, n)
	if _, err := f.ReadAt(body, recHeader); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, false, nil
		}
		return 0, false, err
	}
	if crc32.ChecksumIEEE(body) != crc {
		return 0, false, nil
	}
	return Op(body[0]), true, nil
}

// readExact reads exactly n bytes, growing the buffer as bytes
// actually arrive (bounded by the real data, not the claimed length).
func readExact(r io.Reader, n int) ([]byte, error) {
	const chunk = 64 << 10
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		step := min(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Close flushes and closes every segment file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	var first error
	for _, sf := range l.segs {
		if err := sf.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
