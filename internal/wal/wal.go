// Package wal implements a write-ahead log with record-level redo
// logging. Every subtuple operation (insert, update, delete) is
// logged before it is applied to a page; dirty pages may only be
// written back after the log records that dirtied them are on stable
// storage (enforced through the buffer pool's flush hook). Recovery
// replays the log in order onto the pages, applying a record only
// when the page's LSN shows it has not been applied yet, and stops at
// the last commit record.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/segment"
)

// Op is the kind of a log record.
type Op byte

// Log record kinds. Slot-level physical redo operations plus
// transaction control records.
const (
	OpInsert Op = iota + 1
	OpUpdate
	OpDelete
	OpCommit
	OpCheckpoint
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	case OpCommit:
		return "COMMIT"
	case OpCheckpoint:
		return "CHECKPOINT"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// Record is one log entry. For page operations Seg/Page/Slot address
// the affected slot and Payload carries the full record image (empty
// for deletes).
type Record struct {
	LSN     uint64 // byte offset of the record in the log file
	Op      Op
	Seg     segment.ID
	Page    uint32
	Slot    uint16
	Payload []byte
}

// CommitPayload encodes the transaction id and commit timestamp a
// transaction's OpCommit record carries. Recovery does not need it —
// a commit record's mere presence makes the preceding operations
// durable — but the stamps let offline tools (and tests) attribute
// each committed batch to its transaction.
func CommitPayload(txn uint64, ts int64) []byte {
	b := binary.AppendUvarint(nil, txn)
	return binary.AppendVarint(b, ts)
}

// DecodeCommitPayload parses a CommitPayload. A nil/empty payload
// (the pre-transaction commit format) decodes as (0, 0, true).
func DecodeCommitPayload(p []byte) (txn uint64, ts int64, ok bool) {
	if len(p) == 0 {
		return 0, 0, true
	}
	txn, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, false
	}
	ts, m := binary.Varint(p[n:])
	if m <= 0 {
		return 0, 0, false
	}
	return txn, ts, true
}

// File is the backing storage of a log: an append-position writer
// with random-access reads. *os.File implements it; crash-simulation
// harnesses substitute fault-injecting implementations.
type File interface {
	io.Writer
	io.ReaderAt
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Log is an append-only write-ahead log backed by one file.
type Log struct {
	mu      sync.Mutex
	f       File
	w       *bufio.Writer
	nextLSN uint64 // == current file size including buffered bytes
	// flushed is the LSN boundary known to be on stable storage. It is
	// written under mu but read atomically, so the buffer pool's
	// write-ahead check (EnsureDurable) can confirm an already-durable
	// LSN without serializing concurrent evictions on the log mutex.
	flushed atomic.Uint64
}

// Open opens (or creates) the log file at path and positions appends
// after the last complete record.
func Open(path string) (*Log, error) {
	f, err := OpenPathFile(path)
	if err != nil {
		return nil, err
	}
	return OpenFile(f)
}

// OpenPathFile opens (or creates) the backing file at path without
// building a Log over it; callers that want to interpose a wrapper
// (retry, fault injection) between the file and the Log use it with
// OpenFile.
func OpenPathFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return f, nil
}

// OpenFile opens a log over an already-open backing file and positions
// appends after the last complete record (truncating a torn tail).
func OpenFile(f File) (*Log, error) {
	l := &Log{f: f}
	// Find the end of the last complete record by scanning.
	end := uint64(0)
	err := l.replayFrom(0, func(r Record) error {
		end = (r.LSN - 1) + uint64(recordSize(&r))
		return nil
	})
	if err != nil && !errors.Is(err, errTorn) {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(int64(end)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(end), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.nextLSN = end
	l.flushed.Store(end)
	l.w = bufio.NewWriter(f)
	return l, nil
}

// header: totalLen uint32 | crc uint32; body: op 1 | seg 2 | page 4 |
// slot 2 | payloadLen uint32 | payload.
const recHeader = 8

// Size returns the record's on-disk length including the header.
func (r *Record) Size() int { return recHeader + 13 + len(r.Payload) }

func recordSize(r *Record) int { return r.Size() }

// Append writes the record to the log buffer and returns its LSN. The
// record is durable only after Sync.
func (l *Log) Append(r *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	body := make([]byte, 0, 13+len(r.Payload))
	body = append(body, byte(r.Op))
	body = binary.LittleEndian.AppendUint16(body, uint16(r.Seg))
	body = binary.LittleEndian.AppendUint32(body, r.Page)
	body = binary.LittleEndian.AppendUint16(body, r.Slot)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(r.Payload)))
	body = append(body, r.Payload...)

	var hdr [recHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := l.w.Write(body); err != nil {
		return 0, err
	}
	// LSNs are 1-based (file offset + 1) so that a page LSN of zero
	// always means "nothing applied yet".
	r.LSN = l.nextLSN + 1
	l.nextLSN += uint64(recHeader + len(body))
	return r.LSN, nil
}

// Sync forces all appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.flushed.Store(l.nextLSN)
	return nil
}

// SyncedThrough returns the LSN boundary known durable; used by the
// buffer pool flush hook to enforce the write-ahead rule.
func (l *Log) SyncedThrough() uint64 {
	return l.flushed.Load()
}

// End returns the log's append position (one past the LSN of the last
// appended record); every valid page LSN is strictly below End()+1.
func (l *Log) End() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// EnsureDurable syncs the log if lsn is not yet durable. The
// already-durable check is a lock-free atomic load: dirty-page
// evictions from independent buffer shards whose LSNs are long since
// synced confirm the write-ahead rule without touching the log mutex.
func (l *Log) EnsureDurable(lsn uint64) error {
	if lsn < l.flushed.Load() {
		return nil
	}
	return l.Sync()
}

// TruncateTail discards every record at or beyond the byte offset
// off. Recovery uses it to drop the records of statements that never
// committed: if they stayed in the log, a commit record appended by
// a later statement would retroactively "commit" them, resurrecting
// the aborted effects on the next recovery.
func (l *Log) TruncateTail(off uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if off >= l.nextLSN {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Truncate(int64(off)); err != nil {
		return err
	}
	if _, err := l.f.Seek(int64(off), io.SeekStart); err != nil {
		return err
	}
	l.nextLSN = off
	if l.flushed.Load() > off {
		l.flushed.Store(off)
	}
	l.w.Reset(l.f)
	return nil
}

// DiscardUnflushed cuts the log back to the last boundary a Sync
// acknowledged: it drops the append buffer (partial or complete
// records that never reached the file, plus any sticky write error a
// failed flush left in the buffered writer) and truncates the file
// over everything written but never fsync-acknowledged. Statement
// abort uses it: every successful statement ends with an acknowledged
// commit sync, so everything past the flushed boundary belongs to the
// failed statement — crucially including a complete commit record
// whose own fsync failed, which must not count as committed once the
// statement has reported failure.
func (l *Log) DiscardUnflushed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Reset(l.f)
	flushed := l.flushed.Load()
	if err := l.f.Truncate(int64(flushed)); err != nil {
		return err
	}
	if _, err := l.f.Seek(int64(flushed), io.SeekStart); err != nil {
		return err
	}
	l.nextLSN = flushed
	return nil
}

var errTorn = errors.New("wal: torn record at end of log")

// Replay streams every complete record in LSN order.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	if err := l.w.Flush(); err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	err := l.replayFrom(0, fn)
	if errors.Is(err, errTorn) {
		return nil
	}
	return err
}

func (l *Log) replayFrom(off uint64, fn func(Record) error) error {
	r := io.NewSectionReader(l.f, int64(off), 1<<62)
	br := bufio.NewReader(r)
	pos := off
	for {
		var hdr [recHeader]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return errTorn
			}
			// A real I/O error must not masquerade as a torn tail:
			// recovery truncates at the torn point, and doing that on a
			// transient read failure would cut off committed records.
			return fmt.Errorf("wal: read log at offset %d: %w", pos, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n < 13 || n > 1<<26 {
			return errTorn
		}
		// Read the body incrementally so a corrupt length claim cannot
		// force a huge up-front allocation.
		body, err := readExact(br, int(n))
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return errTorn
			}
			return fmt.Errorf("wal: read log at offset %d: %w", pos, err)
		}
		if crc32.ChecksumIEEE(body) != crc {
			return errTorn
		}
		rec := Record{
			LSN:  pos + 1,
			Op:   Op(body[0]),
			Seg:  segment.ID(binary.LittleEndian.Uint16(body[1:])),
			Page: binary.LittleEndian.Uint32(body[3:]),
			Slot: binary.LittleEndian.Uint16(body[7:]),
		}
		plen := binary.LittleEndian.Uint32(body[9:])
		if int(plen) != len(body)-13 {
			return errTorn
		}
		rec.Payload = body[13:]
		if err := fn(rec); err != nil {
			return err
		}
		pos += uint64(recHeader + n)
	}
}

// readExact reads exactly n bytes, growing the buffer as bytes
// actually arrive (bounded by the real data, not the claimed length).
func readExact(r io.Reader, n int) ([]byte, error) {
	const chunk = 64 << 10
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		step := min(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Close()
}
