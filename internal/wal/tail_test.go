package wal

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// readAll drains a cursor's currently-durable bytes in max-sized
// chunks, returning the concatenation and the final position.
func readAll(t *testing.T, c *TailCursor, max int) ([]byte, uint64) {
	t.Helper()
	var out []byte
	for {
		data, _, err := c.Read(max)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			return out, c.Pos()
		}
		out = append(out, data...)
	}
}

// TestTailCursorSegmentBoundary: a cursor positioned exactly at a
// segment's end steps cleanly into the next segment, and a cursor at
// the durable horizon returns empty until the horizon advances.
func TestTailCursorSegmentBoundary(t *testing.T) {
	dir := t.TempDir()
	l := openSegLog(t, dir, 96)
	defer l.Close()
	payload := []byte("0123456789abcdef") // 37-byte records → 2 per 96-byte segment
	var want []byte
	rec := func() {
		r := &Record{Op: OpInsert, Seg: 1, Page: 7, Payload: payload}
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		rec()
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() < 3 {
		t.Fatalf("log did not roll: %d segments", l.SegmentCount())
	}
	want, err := l.ReadDurable(0, l.SyncedThrough())
	if err != nil {
		t.Fatal(err)
	}

	// Walk the chain in chunks sized to land the cursor exactly on the
	// first segment boundary, then on every later boundary.
	c, err := l.TailCursor(0)
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := c.Read(74) // exactly two records = segment 0
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 74 {
		t.Fatalf("first chunk = %d bytes, want 74", len(first))
	}
	rest, pos := readAll(t, c, 74)
	got := append(append([]byte(nil), first...), rest...)
	if !bytes.Equal(got, want) {
		t.Fatalf("cursor bytes diverge from ReadDurable: %d vs %d bytes", len(got), len(want))
	}
	if pos != l.SyncedThrough() {
		t.Fatalf("cursor stopped at %d, durable horizon %d", pos, l.SyncedThrough())
	}

	// At the horizon the cursor blocks (returns empty) rather than
	// over-reading buffered bytes: append without sync, then sync and
	// confirm TailNotify wakes the read.
	ch := l.TailNotify()
	rec()
	if data, _, err := c.Read(1 << 20); err != nil || len(data) != 0 {
		t.Fatalf("read of unsynced tail = %d bytes, err %v; want empty", len(data), err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("TailNotify did not fire after Sync")
	}
	data, _, err := c.Read(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 37 {
		t.Fatalf("post-sync read = %d bytes, want 37", len(data))
	}
}

// TestTailCursorRecycled: positions below the oldest retained segment
// surface the typed ErrTailRecycled, both at cursor creation and on a
// later Read after Recycle ran behind an idle cursor.
func TestTailCursorRecycled(t *testing.T) {
	dir := t.TempDir()
	l := openSegLog(t, dir, 96)
	defer l.Close()
	payload := []byte("0123456789abcdef")
	for i := 0; i < 6; i++ {
		if _, err := l.Append(&Record{Op: OpInsert, Seg: 1, Page: 1, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Append(&Record{Op: OpCommit}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	idle, err := l.TailCursor(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.WriteCheckpoint(CheckpointInfo{Durable: l.SyncedThrough()}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recycle(); err != nil {
		t.Fatal(err)
	}
	if l.OldestRetained() == 0 {
		t.Fatal("recycle retired nothing; test needs a trimmed chain")
	}
	if _, err := l.TailCursor(0); !errors.Is(err, ErrTailRecycled) {
		t.Fatalf("TailCursor(0) after recycle: err = %v, want ErrTailRecycled", err)
	}
	if _, _, err := idle.Read(1 << 20); !errors.Is(err, ErrTailRecycled) {
		t.Fatalf("idle cursor read after recycle: err = %v, want ErrTailRecycled", err)
	}
	// A cursor at the retained boundary still works.
	c, err := l.TailCursor(l.OldestRetained())
	if err != nil {
		t.Fatal(err)
	}
	if data, _, err := c.Read(1 << 20); err != nil || len(data) == 0 {
		t.Fatalf("boundary cursor read = %d bytes, err %v", len(data), err)
	}
}

// TestTailCursorRegressOnTruncate: a truncation behind the cursor
// makes the next Read regress to the cut point and re-ship the
// rewritten bytes, so a follower never keeps a stale suffix.
func TestTailCursorRegressOnTruncate(t *testing.T) {
	dir := t.TempDir()
	l := openSegLog(t, dir, 1<<20)
	defer l.Close()
	payload := []byte("0123456789abcdef")
	if _, err := l.Append(&Record{Op: OpInsert, Seg: 1, Page: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpCommit}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	commitEnd := l.End()
	// An uncommitted suffix gets shipped (it is durable) ...
	if _, err := l.Append(&Record{Op: OpInsert, Seg: 1, Page: 2, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	c, err := l.TailCursor(0)
	if err != nil {
		t.Fatal(err)
	}
	got, pos := readAll(t, c, 1<<20)
	if pos != l.End() {
		t.Fatalf("cursor at %d, end %d", pos, l.End())
	}
	// ... then recovery-style truncation cuts it and different records
	// take its place.
	if err := l.TruncateTail(commitEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpDelete, Seg: 1, Page: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpCommit}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	data, pos, err := c.Read(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if pos != commitEnd {
		t.Fatalf("cursor regressed to %d, want cut point %d", pos, commitEnd)
	}
	full := append(got[:commitEnd], data...)
	want, err := l.ReadDurable(0, l.End())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, want) {
		t.Fatal("regressed cursor bytes diverge from the rewritten log")
	}
}

// TestMirrorRoundTrip: bytes shipped off a rolling, checkpointing
// primary and mirrored with MirrorAppend/MirrorCheckpoint produce a
// follower chain that replays the identical record stream, reopens
// cleanly, and recycles on its own checkpoint horizon.
func TestMirrorRoundTrip(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p := openSegLog(t, pdir, 256)
	defer p.Close()
	payload := []byte("0123456789abcdef")
	appendGroup := func(pages ...uint32) {
		for _, pg := range pages {
			if _, err := p.Append(&Record{Op: OpInsert, Seg: 1, Page: pg, Payload: payload}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.Append(&Record{Op: OpCommit, Payload: CommitPayload(0, 1)}); err != nil {
			t.Fatal(err)
		}
		if err := p.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	appendGroup(1, 2, 3)
	appendGroup(4, 5)
	if _, err := p.WriteCheckpoint(CheckpointInfo{Durable: p.SyncedThrough()}); err != nil {
		t.Fatal(err)
	}
	appendGroup(6, 7, 8, 9)
	appendGroup(10)

	f := openSegLog(t, fdir, 256)
	c, err := p.TailCursor(0)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(t, c, 64) // small chunks: exercise partial-record carry
	recs, consumed, err := DecodeRecords(raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(raw) {
		t.Fatalf("decoded %d of %d shipped bytes", consumed, len(raw))
	}
	at := uint64(0)
	for _, r := range recs {
		start := r.LSN - 1
		end := start + uint64(r.Size())
		if r.Op == OpCheckpoint {
			if err := f.MirrorCheckpoint(start, raw[start:end]); err != nil {
				t.Fatal(err)
			}
		} else if err := f.MirrorAppend(start, raw[start:end]); err != nil {
			t.Fatal(err)
		}
		at = end
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if at != p.End() || f.End() != p.End() {
		t.Fatalf("mirror end %d, primary end %d", f.End(), p.End())
	}
	if f.CheckpointLSN() != p.CheckpointLSN() {
		t.Fatalf("mirror checkpoint %d, primary %d", f.CheckpointLSN(), p.CheckpointLSN())
	}
	if _, err := f.Recycle(); err != nil {
		t.Fatal(err)
	}
	if f.OldestRetained() == 0 {
		t.Fatal("mirror recycle retired nothing despite mirrored checkpoint")
	}
	collect := func(l *Log) []Record {
		var rs []Record
		if err := l.ReplayTail(func(r Record) error {
			r.Payload = append([]byte(nil), r.Payload...)
			rs = append(rs, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return rs
	}
	prs, frs := collect(p), collect(f)
	if len(prs) != len(frs) {
		t.Fatalf("mirror tail has %d records, primary %d", len(frs), len(prs))
	}
	for i := range prs {
		if prs[i].LSN != frs[i].LSN || prs[i].Op != frs[i].Op || !bytes.Equal(prs[i].Payload, frs[i].Payload) {
			t.Fatalf("record %d diverges: %+v vs %+v", i, prs[i], frs[i])
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The mirrored chain reopens like any crashed follower would.
	f2 := openSegLog(t, fdir, 256)
	defer f2.Close()
	if f2.End() != p.End() {
		t.Fatalf("reopened mirror end %d, primary end %d", f2.End(), p.End())
	}
}
