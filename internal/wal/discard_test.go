package wal

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/segment"
)

// flakyFile is an in-memory wal.File whose Write/Sync/ReadAt can be made
// to fail on demand; the tests below use it to model flaky storage
// without touching the filesystem.
type flakyFile struct {
	mu        sync.Mutex
	data      []byte
	synced    int // durable prefix length; informational
	failWrite int // next N writes fail
	failRead  int
	failSync  int
	shortBy   int  // failing writes still accept all but shortBy bytes
	transient bool // classification of injected errors
	writes    int
}

type flakyErr struct{ transient bool }

func (e flakyErr) Error() string   { return "memfile: injected fault" }
func (e flakyErr) Transient() bool { return e.transient }

func (m *flakyFile) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writes++
	if m.failWrite > 0 {
		m.failWrite--
		n := len(p) - m.shortBy
		if n < 0 {
			n = 0
		}
		m.data = append(m.data, p[:n]...)
		return n, flakyErr{m.transient}
	}
	m.data = append(m.data, p...)
	return len(p), nil
}

func (m *flakyFile) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failRead > 0 {
		m.failRead--
		return 0, flakyErr{m.transient}
	}
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *flakyFile) Seek(offset int64, whence int) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch whence {
	case io.SeekStart:
		return offset, nil
	case io.SeekEnd:
		return int64(len(m.data)) + offset, nil
	}
	return 0, fmt.Errorf("memfile: unsupported whence %d", whence)
}

func (m *flakyFile) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < int64(len(m.data)) {
		m.data = m.data[:size]
	}
	if m.synced > int(size) {
		m.synced = int(size)
	}
	return nil
}

func (m *flakyFile) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failSync > 0 {
		m.failSync--
		return flakyErr{m.transient}
	}
	m.synced = len(m.data)
	return nil
}

func (m *flakyFile) Close() error { return nil }

func record(op Op, payload string) *Record {
	return &Record{Op: op, Seg: 3, Page: 7, Slot: 1, Payload: []byte(payload)}
}

func countRecords(t *testing.T, l *Log) int {
	t.Helper()
	n := 0
	if err := l.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return n
}

// TestDiscardUnflushedDropsBufferedTail: records appended after the
// last acknowledged sync — even a complete commit record whose own
// fsync failed — are discarded, and the log accepts appends again.
func TestDiscardUnflushedDropsBufferedTail(t *testing.T) {
	mf := &flakyFile{}
	l, err := OpenFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(record(OpInsert, "committed")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(record(OpCommit, "")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	durable := l.End()

	// A failing statement: one record flushed to the file by a full
	// buffer or an eviction, one still buffered, then a commit whose
	// sync fails.
	if _, err := l.Append(record(OpInsert, "doomed-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.w.Flush(); err != nil { // reached the file, not synced
		t.Fatal(err)
	}
	if _, err := l.Append(record(OpInsert, "doomed-2")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(record(OpCommit, "")); err != nil {
		t.Fatal(err)
	}
	mf.failSync = 1
	if err := l.Sync(); err == nil {
		t.Fatal("sync should have failed")
	}

	if err := l.DiscardUnflushed(); err != nil {
		t.Fatal(err)
	}
	if l.End() != durable {
		t.Fatalf("append position %d after discard, want the durable boundary %d", l.End(), durable)
	}
	if got := countRecords(t, l); got != 2 {
		t.Fatalf("%d records after discard, want the 2 committed ones", got)
	}

	// The log must be fully usable afterwards.
	if _, err := l.Append(record(OpInsert, "next")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := countRecords(t, l); got != 3 {
		t.Fatalf("%d records after post-discard append, want 3", got)
	}
}

// TestDiscardUnflushedClearsStickyError: a failed flush poisons the
// bufio writer (every later write returns the same error); discard
// must clear it.
func TestDiscardUnflushedClearsStickyError(t *testing.T) {
	mf := &flakyFile{}
	l, err := OpenFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(record(OpCommit, "")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(record(OpInsert, "doomed")); err != nil {
		t.Fatal(err)
	}
	mf.failWrite = 1
	mf.shortBy = 5 // a partial flush leaves mid-record bytes in the file
	if err := l.Sync(); err == nil {
		t.Fatal("sync should have failed")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("the sticky bufio error should still fail syncs")
	}
	if err := l.DiscardUnflushed(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(record(OpInsert, "after")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("log still poisoned after discard: %v", err)
	}
	if got := countRecords(t, l); got != 2 {
		t.Fatalf("%d records, want 2 (commit + post-discard insert)", got)
	}
}

// TestReplayPropagatesRealReadErrors: only EOF shapes mean "end of
// log"; a real I/O error during replay must surface, not silently
// truncate the committed history.
func TestReplayPropagatesRealReadErrors(t *testing.T) {
	mf := &flakyFile{}
	l, err := OpenFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(record(OpInsert, "x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	mf.failRead = 1
	err = l.Replay(func(Record) error { return nil })
	var me flakyErr
	if !errors.As(err, &me) {
		t.Fatalf("replay swallowed the read error, got %v", err)
	}
}

// TestRetryFileResumesPartialWrites: a transient fault mid-write must
// not duplicate the bytes the backing file already accepted.
func TestRetryFileResumesPartialWrites(t *testing.T) {
	mf := &flakyFile{failWrite: 2, shortBy: 3, transient: true}
	f := WithRetry(mf, segment.RetryPolicy{Tries: 4})
	payload := []byte("abcdefghij")
	n, err := f.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if string(mf.data) != string(payload) {
		t.Fatalf("file content %q, want %q (duplicated or lost bytes)", mf.data, payload)
	}
	if mf.writes != 3 {
		t.Fatalf("expected 3 attempts, saw %d", mf.writes)
	}
}

// TestRetryFileAbsorbsTransientSyncs: a whole Log over a flaky file
// keeps working when faults stay within the retry budget.
func TestRetryFileAbsorbsTransientSyncs(t *testing.T) {
	mf := &flakyFile{transient: true}
	l, err := OpenFile(WithRetry(mf, segment.RetryPolicy{Tries: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(record(OpInsert, "x")); err != nil {
		t.Fatal(err)
	}
	mf.failSync = 3
	if err := l.Sync(); err != nil {
		t.Fatalf("3 transient sync faults should be absorbed by 4 tries: %v", err)
	}
	if got := countRecords(t, l); got != 1 {
		t.Fatalf("%d records, want 1", got)
	}
}
