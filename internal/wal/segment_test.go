package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openSegLog opens a rolling log in dir with a tiny segment size so
// tests cross segment bounds after a handful of records.
func openSegLog(t *testing.T, dir string, segBytes int64) *Log {
	t.Helper()
	l, err := OpenDir(dir, Config{SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestSegmentRollRoundTrip: appends that would cross a segment bound
// roll to a new file — records never span segments — and replay walks
// the whole chain in order, both live and after a reopen.
func TestSegmentRollRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openSegLog(t, dir, 96)
	var lsns []uint64
	payload := []byte("0123456789abcdef") // 16 bytes → 37-byte records
	for i := 0; i < 12; i++ {
		lsn, err := l.Append(&Record{Op: OpInsert, Seg: 1, Page: uint32(i), Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.SegmentCount(); got < 3 {
		t.Fatalf("log did not roll: %d segments for 12 records over 96-byte segments", got)
	}
	check := func(l *Log, wantLSNs []uint64) {
		t.Helper()
		var got []uint64
		if err := l.Replay(func(r Record) error {
			got = append(got, r.LSN)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantLSNs) {
			t.Fatalf("replayed %d records, want %d", len(got), len(wantLSNs))
		}
		for i := range got {
			if got[i] != wantLSNs[i] {
				t.Fatalf("record %d LSN = %d, want %d", i, got[i], wantLSNs[i])
			}
		}
	}
	check(l, lsns)
	end := l.End()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openSegLog(t, dir, 96)
	defer l2.Close()
	if l2.End() != end {
		t.Fatalf("reopened end = %d, want %d", l2.End(), end)
	}
	check(l2, lsns)
	// Appends continue on the reopened chain.
	lsn, err := l2.Append(&Record{Op: OpCommit})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != end+1 {
		t.Fatalf("post-reopen LSN = %d, want %d", lsn, end+1)
	}
}

// TestOversizedRecordOwnSegment: a record bigger than SegmentBytes is
// written whole into a fresh segment — never split, never rejected.
func TestOversizedRecordOwnSegment(t *testing.T) {
	dir := t.TempDir()
	l := openSegLog(t, dir, 64)
	if _, err := l.Append(&Record{Op: OpInsert, Seg: 1, Page: 1, Payload: []byte("small")}); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 300) // record ≈ 321 bytes ≫ 64
	for i := range big {
		big[i] = byte(i)
	}
	if _, err := l.Append(&Record{Op: OpUpdate, Seg: 1, Page: 2, Payload: big}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpCommit}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := l.Replay(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	if string(got[1].Payload) != string(big) {
		t.Fatal("oversized payload mangled across segment bound")
	}
	l.Close()
	// And the chain reopens cleanly around the oversized segment.
	l2 := openSegLog(t, dir, 64)
	defer l2.Close()
	n := 0
	if err := l2.Replay(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("reopened replay saw %d records, want 3", n)
	}
}

// TestRecycleRespectsHorizon: without a checkpoint nothing is retired;
// after one, only whole segments strictly below the checkpoint go, and
// the replay tail survives recycling intact.
func TestRecycleRespectsHorizon(t *testing.T) {
	dir := t.TempDir()
	l := openSegLog(t, dir, 96)
	payload := []byte("0123456789abcdef")
	for i := 0; i < 12; i++ {
		if _, err := l.Append(&Record{Op: OpInsert, Seg: 1, Page: uint32(i), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	segsBefore := l.SegmentCount()
	if segsBefore < 3 {
		t.Fatalf("log did not roll: %d segments", segsBefore)
	}

	// No checkpoint yet: every segment is still the replay tail.
	n, err := l.Recycle()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || l.SegmentCount() != segsBefore {
		t.Fatalf("recycle without a checkpoint removed %d segments", n)
	}

	ckpt, err := l.WriteCheckpoint(CheckpointInfo{Durable: l.SyncedThrough()})
	if err != nil {
		t.Fatal(err)
	}
	// Records after the checkpoint are the new tail.
	var tailLSNs []uint64
	for i := 0; i < 3; i++ {
		lsn, err := l.Append(&Record{Op: OpDelete, Seg: 1, Page: uint32(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		tailLSNs = append(tailLSNs, lsn)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	n, err = l.Recycle()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("recycle after checkpoint removed nothing")
	}
	// The checkpoint's own segment must survive: the tail replays.
	var got []uint64
	if err := l.ReplayTail(func(r Record) error {
		if r.Op != OpCheckpoint {
			got = append(got, r.LSN)
		}
		return nil
	}); err != nil {
		t.Fatalf("tail replay after recycle: %v", err)
	}
	if len(got) != len(tailLSNs) {
		t.Fatalf("tail after recycle has %d records, want %d", len(got), len(tailLSNs))
	}
	if l.CheckpointLSN() != ckpt {
		t.Fatalf("checkpoint LSN %d, want %d", l.CheckpointLSN(), ckpt)
	}
	end := l.End()
	l.Close()

	// The recycled chain reopens from the checkpoint.
	l2 := openSegLog(t, dir, 96)
	defer l2.Close()
	if l2.CheckpointLSN() != ckpt {
		t.Fatalf("reopened checkpoint LSN %d, want %d", l2.CheckpointLSN(), ckpt)
	}
	if l2.End() != end {
		t.Fatalf("reopened end %d, want %d", l2.End(), end)
	}
}

// TestMissingSegmentTyped: a gap inside the replay chain surfaces as
// ErrMissingSegment, a typed error, not as a silent replay of a
// truncated history.
func TestMissingSegmentTyped(t *testing.T) {
	dir := t.TempDir()
	l := openSegLog(t, dir, 96)
	payload := []byte("0123456789abcdef")
	for i := 0; i < 12; i++ {
		if _, err := l.Append(&Record{Op: OpInsert, Seg: 1, Page: uint32(i), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() < 3 {
		t.Fatalf("log did not roll: %d segments", l.SegmentCount())
	}
	l.Close()

	names := segFiles(t, dir)
	if len(names) < 3 {
		t.Fatalf("found %d segment files, want >= 3", len(names))
	}

	// Remove a middle segment: no checkpoint exists, so replay must
	// start at offset zero and the gap is fatal.
	victim := names[1]
	if victim == legacySegName {
		t.Fatalf("segment list out of order: %v", names)
	}
	if err := os.Remove(filepath.Join(dir, victim)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, Config{SegmentBytes: 96}); !errors.Is(err, ErrMissingSegment) {
		t.Fatalf("open with a mid-chain gap: err = %v, want ErrMissingSegment", err)
	}

	// Remove the base segment too: still no checkpoint to restart
	// from, so the chain is unusable.
	if err := os.Remove(filepath.Join(dir, legacySegName)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, Config{SegmentBytes: 96}); !errors.Is(err, ErrMissingSegment) {
		t.Fatalf("open without segment zero: err = %v, want ErrMissingSegment", err)
	}
}

// TestMissingHistoryBelowCheckpointTolerated: segments below the
// checkpoint are dead weight — a hole down there (a recycle that
// crashed between removals, or manual deletion) must not block open,
// and the next Recycle sweeps the stranded files.
func TestMissingHistoryBelowCheckpointTolerated(t *testing.T) {
	dir := t.TempDir()
	l := openSegLog(t, dir, 96)
	payload := []byte("0123456789abcdef")
	for i := 0; i < 12; i++ {
		if _, err := l.Append(&Record{Op: OpInsert, Seg: 1, Page: uint32(i), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	ckpt, err := l.WriteCheckpoint(CheckpointInfo{Durable: l.SyncedThrough()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpCommit}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Punch a hole in the pre-checkpoint history, as a crashed recycle
	// would after removing some but not all dead segments.
	names := segFiles(t, dir)
	if err := os.Remove(filepath.Join(dir, names[1])); err != nil {
		t.Fatal(err)
	}

	l2 := openSegLog(t, dir, 96)
	if l2.CheckpointLSN() != ckpt {
		t.Fatalf("reopened checkpoint LSN %d, want %d", l2.CheckpointLSN(), ckpt)
	}
	n := 0
	if err := l2.ReplayTail(func(Record) error { n++; return nil }); err != nil {
		t.Fatalf("tail replay with stranded history: %v", err)
	}
	if n != 2 { // checkpoint + commit
		t.Fatalf("tail has %d records, want 2", n)
	}
	// Recycle sweeps both the stranded orphans and the contiguous
	// history below the checkpoint.
	if _, err := l2.Recycle(); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	left := segFiles(t, dir)
	if len(left) != 1 {
		t.Fatalf("after recycle %d segment files remain (%v), want 1", len(left), left)
	}
}

// TestTornCheckpointFallsBack: a checkpoint whose record is torn on
// disk must not become the replay start — open falls back to the
// previous complete checkpoint.
func TestTornCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := openSegLog(t, dir, 256)
	if _, err := l.Append(&Record{Op: OpInsert, Seg: 1, Page: 1, Payload: []byte("pre")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	ckptA, err := l.WriteCheckpoint(CheckpointInfo{Durable: l.SyncedThrough()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpInsert, Seg: 1, Page: 2, Payload: []byte("mid")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	ckptB, err := l.WriteCheckpoint(CheckpointInfo{Durable: l.SyncedThrough()})
	if err != nil {
		t.Fatal(err)
	}
	if ckptB <= ckptA {
		t.Fatalf("checkpoint LSNs not increasing: %d then %d", ckptA, ckptB)
	}
	l.Close()

	// Tear checkpoint B: it opens a fresh segment, so clipping that
	// file mid-record leaves a torn first record.
	nameB := segName(ckptB - 1)
	fi, err := os.Stat(filepath.Join(dir, nameB))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, nameB), fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2 := openSegLog(t, dir, 256)
	defer l2.Close()
	if l2.CheckpointLSN() != ckptA {
		t.Fatalf("replay start = %d, want fallback to checkpoint A at %d", l2.CheckpointLSN(), ckptA)
	}
	// The tail from A replays the mid record; the torn B is cut.
	var ops []Op
	if err := l2.ReplayTail(func(r Record) error { ops = append(ops, r.Op); return nil }); err != nil {
		t.Fatal(err)
	}
	want := []Op{OpCheckpoint, OpInsert}
	if len(ops) != len(want) {
		t.Fatalf("tail ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("tail ops = %v, want %v", ops, want)
		}
	}
	if l2.End() != ckptB-1 {
		t.Fatalf("end after cutting torn checkpoint = %d, want %d", l2.End(), ckptB-1)
	}
}

// TestCheckpointInfoRoundTrip: the durable horizon and open-txn table
// survive the encode/decode round trip, and a clipped payload is
// rejected rather than misdecoded.
func TestCheckpointInfoRoundTrip(t *testing.T) {
	ci := CheckpointInfo{Durable: 12345, OpenTxns: []uint64{7, 9, 42}}
	enc := ci.Encode()
	got, ok := DecodeCheckpointInfo(enc)
	if !ok {
		t.Fatal("decode failed")
	}
	if got.Durable != ci.Durable || len(got.OpenTxns) != 3 ||
		got.OpenTxns[0] != 7 || got.OpenTxns[1] != 9 || got.OpenTxns[2] != 42 {
		t.Fatalf("round trip = %+v, want %+v", got, ci)
	}
	if _, ok := DecodeCheckpointInfo(enc[:len(enc)-1]); ok {
		t.Fatal("clipped payload decoded")
	}
	if empty, ok := DecodeCheckpointInfo(CheckpointInfo{}.Encode()); !ok || empty.Durable != 0 || len(empty.OpenTxns) != 0 {
		t.Fatalf("empty info round trip = %+v, ok=%v", empty, ok)
	}
}
