package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func openLog(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	recs := []*Record{
		{Op: OpInsert, Seg: 1, Page: 2, Slot: 3, Payload: []byte("one")},
		{Op: OpUpdate, Seg: 1, Page: 2, Slot: 3, Payload: []byte("two!")},
		{Op: OpDelete, Seg: 2, Page: 9, Slot: 0},
		{Op: OpCommit},
	}
	var lsns []uint64
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Errorf("LSNs not increasing: %v", lsns)
		}
	}
	if lsns[0] == 0 {
		t.Error("first LSN is zero (must be 1-based)")
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := l.Replay(func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		w := recs[i]
		if r.Op != w.Op || r.Seg != w.Seg || r.Page != w.Page || r.Slot != w.Slot || string(r.Payload) != string(w.Payload) {
			t.Errorf("record %d = %+v, want %+v", i, r, w)
		}
		if r.LSN != lsns[i] {
			t.Errorf("record %d LSN = %d, want %d", i, r.LSN, lsns[i])
		}
	}
}

func TestReopenAppendsAfterLast(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	l.Append(&Record{Op: OpInsert, Seg: 1, Page: 1, Payload: []byte("a")})
	l.Sync()
	l.Close()

	l2 := openLog(t, dir)
	l2.Append(&Record{Op: OpInsert, Seg: 1, Page: 1, Slot: 1, Payload: []byte("b")})
	l2.Sync()
	n := 0
	l2.Replay(func(Record) error { n++; return nil })
	if n != 2 {
		t.Errorf("replayed %d, want 2", n)
	}
	l2.Close()
}

// A torn tail (partial record at the end) is truncated on reopen.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	l, _ := Open(path)
	l.Append(&Record{Op: OpInsert, Seg: 1, Page: 1, Payload: []byte("keep")})
	l.Append(&Record{Op: OpCommit})
	l.Sync()
	l.Close()
	// Append garbage simulating a torn write.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{42, 0, 0, 0, 1, 2})
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	l2.Replay(func(Record) error { n++; return nil })
	if n != 2 {
		t.Errorf("replay after torn tail = %d records, want 2", n)
	}
	// Appends continue cleanly.
	if _, err := l2.Append(&Record{Op: OpCommit}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	n = 0
	l2.Replay(func(Record) error { n++; return nil })
	if n != 3 {
		t.Errorf("after append: %d records, want 3", n)
	}
}

// A corrupted byte in the middle invalidates the tail from there.
func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	l, _ := Open(path)
	l.Append(&Record{Op: OpInsert, Seg: 1, Page: 1, Payload: []byte("first")})
	r2 := &Record{Op: OpInsert, Seg: 1, Page: 1, Slot: 1, Payload: []byte("second")}
	lsn2, _ := l.Append(r2)
	l.Sync()
	l.Close()
	// Flip a payload byte of the second record.
	data, _ := os.ReadFile(path)
	data[lsn2-1+8+13] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	l2.Replay(func(Record) error { n++; return nil })
	if n != 1 {
		t.Errorf("replay past corruption = %d records, want 1", n)
	}
}

func TestEnsureDurable(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	defer l.Close()
	lsn, _ := l.Append(&Record{Op: OpCommit})
	if l.SyncedThrough() > lsn {
		t.Error("unsynced record reported durable")
	}
	if err := l.EnsureDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if l.SyncedThrough() <= lsn-1 {
		t.Error("EnsureDurable did not advance the boundary")
	}
	// Already durable: no-op.
	if err := l.EnsureDurable(lsn); err != nil {
		t.Fatal(err)
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpInsert: "INSERT", OpUpdate: "UPDATE", OpDelete: "DELETE",
		OpCommit: "COMMIT", OpCheckpoint: "CHECKPOINT",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %s", op, op.String())
		}
	}
	if Op(99).String() == "" {
		t.Error("unknown op renders empty")
	}
}
