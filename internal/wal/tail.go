package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/segment"
)

// This file is the replication face of the log. A primary ships its
// durable bytes to followers through a TailCursor; a follower mirrors
// them verbatim into its own chain with MirrorAppend/MirrorCheckpoint,
// so both sides hold byte-identical logs at identical global offsets
// and every page LSN means the same thing on either machine.

// ErrTailRecycled reports that a tail position has been recycled away:
// the segments holding it were retired below the checkpoint horizon,
// so a follower at that position must re-seed from a fresh checkpoint
// snapshot instead of catching up incrementally.
var ErrTailRecycled = errors.New("wal: tail position recycled below the retained chain")

// tailCut records one truncation for tail cursors: every record at or
// beyond off was cut at epoch. The log keeps a suffix-min stack of
// these (strictly increasing in both fields), so a cursor that slept
// through several truncations can regress to the lowest offset cut
// since it last looked. Old entries merge conservatively — a cursor
// may over-regress and re-ship bytes the follower already holds
// (which it skips), never under-regress.
type tailCut struct{ epoch, off uint64 }

// noteCutLocked records a truncation to off; the caller holds l.mu and
// has already bumped l.epoch.
func (l *Log) noteCutLocked(off uint64) {
	e := l.epoch.Load()
	for len(l.cuts) > 0 && l.cuts[len(l.cuts)-1].off >= off {
		l.cuts = l.cuts[:len(l.cuts)-1]
	}
	l.cuts = append(l.cuts, tailCut{epoch: e, off: off})
	if len(l.cuts) > 64 {
		l.cuts[1].off = min(l.cuts[0].off, l.cuts[1].off)
		l.cuts = l.cuts[1:]
	}
	l.notifyTailLocked()
}

// cutBelowLocked returns the lowest offset cut by any truncation newer
// than epoch e; ok is false when no such truncation happened.
func (l *Log) cutBelowLocked(e uint64) (uint64, bool) {
	for _, c := range l.cuts {
		if c.epoch > e {
			return c.off, true
		}
	}
	return 0, false
}

// notifyTailLocked wakes tail followers blocked in TailNotify; the
// caller holds l.mu. Every path that advances the durable horizon or
// reshapes the chain calls it.
func (l *Log) notifyTailLocked() {
	if l.tailCh != nil {
		close(l.tailCh)
		l.tailCh = nil
	}
}

// TailNotify returns a channel that is closed the next time the
// durable horizon advances or the chain is truncated. A tail follower
// takes the channel before checking for data, so an advance between
// the check and the wait is never missed.
func (l *Log) TailNotify() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tailCh == nil {
		l.tailCh = make(chan struct{})
	}
	return l.tailCh
}

// TailCursor follows the log's durable bytes from a global offset. It
// only ever returns bytes at or below the durable horizon (flushed),
// which are guaranteed to be physically in the segment files, so
// reading needs no flush and no coordination with appenders. A
// truncation behind the cursor makes it regress to the cut point on
// its next Read; a recycle past the cursor surfaces ErrTailRecycled.
type TailCursor struct {
	l     *Log
	pos   uint64
	epoch uint64
}

// TailCursor opens a cursor at global byte offset from. from must be a
// record boundary the follower learned from its own mirrored chain (or
// zero for the start of history); an offset inside the retired portion
// of the chain returns ErrTailRecycled.
func (l *Log) TailCursor(from uint64) (*TailCursor, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from > l.nextLSN {
		return nil, fmt.Errorf("wal: tail cursor offset %d beyond log end %d", from, l.nextLSN)
	}
	if from < l.segs[0].base {
		return nil, ErrTailRecycled
	}
	return &TailCursor{l: l, pos: from, epoch: l.epoch.Load()}, nil
}

// Pos returns the cursor's current position: the global offset of the
// next byte Read will return.
func (c *TailCursor) Pos() uint64 { return c.pos }

// Read returns up to max durable bytes starting at the cursor's
// position, along with that position. An empty result with a nil
// error means the cursor is caught up to the durable horizon (or a
// concurrent truncation raced the read — either way the caller waits
// on TailNotify and retries); a position that crosses into a segment
// exactly at its end steps cleanly into the next one. ErrTailRecycled
// means the position was recycled and the follower must re-seed.
func (c *TailCursor) Read(max int) (data []byte, pos uint64, err error) {
	l := c.l
	l.mu.Lock()
	if e := l.epoch.Load(); e != c.epoch {
		if off, ok := l.cutBelowLocked(c.epoch); ok && off < c.pos {
			c.pos = off
		}
		c.epoch = e
	}
	pos = c.pos
	if pos < l.segs[0].base {
		l.mu.Unlock()
		return nil, pos, ErrTailRecycled
	}
	hi := l.flushed.Load()
	if hi <= pos {
		l.mu.Unlock()
		return nil, pos, nil
	}
	n := hi - pos
	if m := uint64(max); n > m {
		n = m
	}
	segs := snapshotSegsLocked(l.segs, hi)
	l.mu.Unlock()

	buf := make([]byte, n)
	if _, rerr := io.ReadFull(chainReader(segs, pos), buf); rerr != nil {
		// A concurrent Recycle can close a captured file, a concurrent
		// truncation can shorten it; distinguish the recycled case and
		// let the caller retry the rest.
		l.mu.Lock()
		recycled := pos < l.segs[0].base
		cut := l.epoch.Load() != c.epoch
		l.mu.Unlock()
		if recycled {
			return nil, pos, ErrTailRecycled
		}
		if cut {
			return nil, pos, nil
		}
		return nil, pos, fmt.Errorf("wal: tail read at offset %d: %w", pos, rerr)
	}
	// If a truncation cut below pos while the read was in flight the
	// buffer may mix old and rewritten bytes; discard it and let the
	// next Read regress.
	l.mu.Lock()
	torn := l.epoch.Load() != c.epoch
	l.mu.Unlock()
	if torn {
		return nil, pos, nil
	}
	c.pos = pos + n
	return buf, pos, nil
}

// snapshotSegsLocked copies the segment list for reading outside the
// log mutex. The active segment's lazily-maintained size is replaced
// with the durable horizon, bounding reads to bytes physically in the
// file.
func snapshotSegsLocked(segs []*segFile, hi uint64) []*segFile {
	out := make([]*segFile, len(segs))
	for i, sf := range segs {
		cp := *sf
		if i == len(segs)-1 {
			cp.size = int64(hi - cp.base)
		}
		out[i] = &cp
	}
	return out
}

// ReadDurable returns the raw log bytes in [from, to). Both bounds
// must be at or below the durable horizon and within the retained
// chain; the snapshot path uses it to pack the checkpoint tail.
func (l *Log) ReadDurable(from, to uint64) ([]byte, error) {
	l.mu.Lock()
	if to < from || to > l.flushed.Load() {
		l.mu.Unlock()
		return nil, fmt.Errorf("wal: read durable [%d,%d) beyond horizon %d", from, to, l.flushed.Load())
	}
	if from < l.segs[0].base {
		l.mu.Unlock()
		return nil, ErrTailRecycled
	}
	segs := snapshotSegsLocked(l.segs, l.flushed.Load())
	l.mu.Unlock()
	buf := make([]byte, to-from)
	if _, err := io.ReadFull(chainReader(segs, from), buf); err != nil {
		return nil, fmt.Errorf("wal: read durable at offset %d: %w", from, err)
	}
	return buf, nil
}

// MirrorAppend appends raw pre-encoded record bytes shipped from a
// primary at global offset at, which must equal the mirror's current
// end — the chains stay byte-identical. Mirror appends never roll on
// size: a follower's segment layout is driven by the primary's
// checkpoints through MirrorCheckpoint, so per-segment size tracks the
// primary's checkpoint cadence rather than SegmentBytes. The bytes are
// buffered; they become durable on the next Sync (or checkpoint).
func (l *Log) MirrorAppend(at uint64, raw []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if at != l.nextLSN {
		return fmt.Errorf("wal: mirror append at offset %d, log end is %d", at, l.nextLSN)
	}
	if _, err := l.w.Write(raw); err != nil {
		return err
	}
	l.nextLSN += uint64(len(raw))
	return nil
}

// MirrorCheckpoint installs a checkpoint record shipped from the
// primary: it syncs everything before the record, rolls so the record
// fronts a fresh segment (mirroring WriteCheckpoint's layout, which
// recovery's probe depends on), appends the raw record at offset at,
// syncs again, and advances the checkpoint horizon so Recycle can
// retire dead segments on the follower too.
func (l *Log) MirrorCheckpoint(at uint64, raw []byte) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if at != l.nextLSN {
		return fmt.Errorf("wal: mirror checkpoint at offset %d, log end is %d", at, l.nextLSN)
	}
	if l.nextLSN > l.active().base {
		if err := l.rollLocked(); err != nil {
			return err
		}
	}
	if _, err := l.w.Write(raw); err != nil {
		return err
	}
	l.nextLSN += uint64(len(raw))
	if err := l.syncLocked(); err != nil {
		return err
	}
	l.ckptLSN = at + 1
	l.tailStart = at
	l.imaged = map[imageKey]uint64{}
	return nil
}

// OldestRetained returns the global offset of the first byte still
// held in the chain; positions below it are recycled.
func (l *Log) OldestRetained() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].base
}

// SegFileName returns the file name of the segment whose first byte is
// global offset base; snapshot restore uses it to seed a follower's
// chain with the shipped checkpoint tail.
func SegFileName(base uint64) string { return segName(base) }

// DecodeRecords parses complete records from buf, whose first byte
// sits at global log offset base. It returns the records and the
// number of bytes consumed; an incomplete record at the end is left
// unconsumed and is not an error, so a streaming follower can feed
// partial batches. A corrupt record (bad CRC or inconsistent lengths)
// is an error: shipped bytes ride TCP, so corruption means the stream
// is broken, not torn. Record payloads alias buf.
func DecodeRecords(buf []byte, base uint64) ([]Record, int, error) {
	var recs []Record
	consumed := 0
	for {
		rest := buf[consumed:]
		if len(rest) < recHeader {
			return recs, consumed, nil
		}
		n := binary.LittleEndian.Uint32(rest[0:])
		crc := binary.LittleEndian.Uint32(rest[4:])
		if n < 13 || n > 1<<26 {
			return recs, consumed, fmt.Errorf("wal: corrupt shipped record at offset %d: length %d", base+uint64(consumed), n)
		}
		if len(rest) < recHeader+int(n) {
			return recs, consumed, nil
		}
		body := rest[recHeader : recHeader+int(n)]
		if crc32.ChecksumIEEE(body) != crc {
			return recs, consumed, fmt.Errorf("wal: corrupt shipped record at offset %d: bad checksum", base+uint64(consumed))
		}
		plen := binary.LittleEndian.Uint32(body[9:])
		if int(plen) != len(body)-13 {
			return recs, consumed, fmt.Errorf("wal: corrupt shipped record at offset %d: payload length mismatch", base+uint64(consumed))
		}
		recs = append(recs, Record{
			LSN:     base + uint64(consumed) + 1,
			Op:      Op(body[0]),
			Seg:     segment.ID(binary.LittleEndian.Uint16(body[1:])),
			Page:    binary.LittleEndian.Uint32(body[3:]),
			Slot:    binary.LittleEndian.Uint16(body[7:]),
			Payload: body[13:],
		})
		consumed += recHeader + int(n)
	}
}
