package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/netserver"
	"repro/internal/repl"
)

// Replication mode (-repl): measure what WAL shipping costs the
// primary and what it buys the fleet. Each rung runs the same
// concurrent-writer workload against a durable primary with 0, 1 or 2
// live followers attached over loopback; the report shows the
// primary's write throughput per rung (the shipping tax), the read
// throughput the followers add, and the apply lag the asynchronous
// design incurs (sampled during the run, and the time to drain to zero
// after the writers stop).

// replPoint is one rung of the replication ladder.
type replPoint struct {
	Followers      int     `json:"followers"`
	Writers        int     `json:"writers"`
	Commits        int     `json:"commits"`
	WriteQPS       float64 `json:"write_qps"`
	FollowerReads  int     `json:"follower_reads"`
	FollowerQPS    float64 `json:"follower_read_qps"`
	LagP50Bytes    uint64  `json:"lag_p50_bytes"`
	LagMaxBytes    uint64  `json:"lag_max_bytes"`
	DrainMs        float64 `json:"drain_ms"`
	BytesShipped   uint64  `json:"bytes_shipped"`
	SnapshotsTaken uint64  `json:"snapshots_taken"`
}

// replBenchReport is the JSON artifact of one -repl run (BENCH_10).
type replBenchReport struct {
	Bench       string      `json:"bench"`
	Workload    string      `json:"workload"`
	DurationSec float64     `json:"duration_s"`
	Points      []replPoint `json:"points"`
}

// runReplBench measures the 0/1/2-follower ladder, writing
// BENCH_10.json.
func runReplBench(writers int, duration time.Duration, outPath string, w io.Writer) error {
	if writers < 1 {
		writers = 4
	}
	rep := replBenchReport{
		Bench:       "BENCH_10 WAL-shipping replication: primary write qps vs followers, follower read qps, apply lag",
		Workload:    fmt.Sprintf("%d concurrent auto-commit INSERT/UPDATE writers on KV(K,V) VERSIONED; one point-SELECT reader per follower", writers),
		DurationSec: duration.Seconds(),
	}
	fmt.Fprintf(w, "\n================ replication ladder (%s per rung, %d writers) ================\n\n", duration, writers)
	fmt.Fprintf(w, "%10s %10s %12s %14s %12s %12s %10s %12s\n",
		"followers", "commits", "write qps", "follower qps", "lag p50", "lag max", "drain ms", "shipped")
	for _, followers := range []int{0, 1, 2} {
		pt, err := measureReplPoint(followers, writers, duration)
		if err != nil {
			return err
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(w, "%10d %10d %12.1f %14.1f %12d %12d %10.1f %12d\n",
			pt.Followers, pt.Commits, pt.WriteQPS, pt.FollowerQPS,
			pt.LagP50Bytes, pt.LagMaxBytes, pt.DrainMs, pt.BytesShipped)
	}

	if outPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("replbench: writing report: %w", err)
		}
		fmt.Fprintf(w, "\nreport written to %s\n", outPath)
	}
	return nil
}

// measureReplPoint runs one rung: a fresh durable primary, `followers`
// live replicas, `writers` concurrent writer goroutines for the
// duration, one reader per follower.
func measureReplPoint(followers, writers int, duration time.Duration) (replPoint, error) {
	dir, err := os.MkdirTemp("", "aimbench-repl-*")
	if err != nil {
		return replPoint{}, err
	}
	defer os.RemoveAll(dir)
	if err := os.MkdirAll(dir+"/primary", 0o755); err != nil {
		return replPoint{}, err
	}
	primary, err := engine.Open(engine.Options{Dir: dir + "/primary"})
	if err != nil {
		return replPoint{}, err
	}
	defer primary.Close()
	if _, err := primary.Exec(`CREATE TABLE KV (K INT, V INT) VERSIONED`); err != nil {
		return replPoint{}, err
	}
	for k := 0; k < 256; k++ {
		if _, err := primary.Exec(fmt.Sprintf(`INSERT INTO KV VALUES (%d, 0)`, k)); err != nil {
			return replPoint{}, err
		}
	}
	srv := netserver.New(primary, netserver.Options{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return replPoint{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	fls := make([]*repl.Follower, followers)
	for i := range fls {
		f, err := repl.Start(repl.Options{Addr: srv.Addr(), Dir: fmt.Sprintf("%s/follower%d", dir, i)})
		if err != nil {
			return replPoint{}, err
		}
		defer f.Close()
		if err := f.WaitApplied(primary.Log().End(), 30*time.Second); err != nil {
			return replPoint{}, fmt.Errorf("replbench: follower %d bootstrap: %w", i, err)
		}
		fls[i] = f
	}

	var commits, reads atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, writers+followers)

	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wi) + 1))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(256)
				var q string
				if i%4 == 0 {
					q = fmt.Sprintf(`INSERT INTO KV VALUES (%d, %d)`, 1000+rng.Intn(100000), i)
				} else {
					q = fmt.Sprintf(`UPDATE x IN KV SET V = %d WHERE x.K = %d`, i, k)
				}
				if _, err := primary.Exec(q); err != nil {
					errs[wi] = err
					return
				}
				commits.Add(1)
			}
		}(wi)
	}
	for fi, f := range fls {
		wg.Add(1)
		go func(fi int, f *repl.Follower) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(fi) + 100))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := fmt.Sprintf(`SELECT x.V FROM x IN KV WHERE x.K = %d`, rng.Intn(256))
				if _, _, err := f.DB().Query(q); err != nil {
					errs[writers+fi] = err
					return
				}
				reads.Add(1)
			}
		}(fi, f)
	}

	// Sample apply lag while the workload runs.
	var lags []uint64
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		for _, f := range fls {
			if db := f.DB(); db != nil {
				lags = append(lags, db.ReplStats().LagBytes)
			}
		}
	}
	close(stop)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return replPoint{}, err
		}
	}

	// Drain: how long until every follower has applied the whole log.
	drainStart := time.Now()
	end := primary.Log().End()
	for _, f := range fls {
		if err := f.WaitApplied(end, 30*time.Second); err != nil {
			return replPoint{}, fmt.Errorf("replbench: drain: %w", err)
		}
	}
	drain := time.Since(drainStart)

	pt := replPoint{
		Followers: followers,
		Writers:   writers,
		Commits:   int(commits.Load()),
		WriteQPS:  float64(commits.Load()) / duration.Seconds(),
	}
	if followers > 0 {
		pt.FollowerReads = int(reads.Load())
		pt.FollowerQPS = float64(reads.Load()) / duration.Seconds()
		pt.DrainMs = float64(drain.Milliseconds())
		for _, f := range fls {
			st := f.DB().ReplStats()
			pt.SnapshotsTaken += st.SnapshotsTaken
		}
		pt.BytesShipped = primary.ReplStats().BytesShipped
		if len(lags) > 0 {
			sorted := append([]uint64(nil), lags...)
			for i := 1; i < len(sorted); i++ { // insertion sort: small n
				for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
					sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
				}
			}
			pt.LagP50Bytes = sorted[len(sorted)/2]
			pt.LagMaxBytes = sorted[len(sorted)-1]
		}
	}
	return pt, nil
}
