package main

import (
	"strings"
	"testing"
)

// TestRunOneSmoke drives a small paper artifact end-to-end through the
// same path the -run flag takes.
func TestRunOneSmoke(t *testing.T) {
	var buf strings.Builder
	if err := runOne("t1", &buf); err != nil {
		t.Fatalf("runOne(t1): %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "T1") {
		t.Fatalf("report missing artifact id:\n%s", out)
	}
	if !strings.Contains(out, "DEPARTMENTS_1NF") {
		t.Fatalf("T1 report missing expected table dump:\n%s", out)
	}
}

func TestRunOneUnknownID(t *testing.T) {
	var buf strings.Builder
	if err := runOne("T99", &buf); err == nil {
		t.Fatal("runOne(T99) should fail for an unknown artifact id")
	}
}
