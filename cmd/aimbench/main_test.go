package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunOneSmoke drives a small paper artifact end-to-end through the
// same path the -run flag takes.
func TestRunOneSmoke(t *testing.T) {
	var buf strings.Builder
	if err := runOne("t1", &buf); err != nil {
		t.Fatalf("runOne(t1): %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "T1") {
		t.Fatalf("report missing artifact id:\n%s", out)
	}
	if !strings.Contains(out, "DEPARTMENTS_1NF") {
		t.Fatalf("T1 report missing expected table dump:\n%s", out)
	}
}

// TestThroughputSmoke drives the -clients mode end-to-end with a tiny
// duration and checks the JSON report is well-formed and plausible.
func TestThroughputSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_5.json")
	var buf strings.Builder
	if err := runThroughput(2, 1, 100*time.Millisecond, 20*time.Microsecond, out, &buf); err != nil {
		t.Fatalf("runThroughput: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("ladder points = %d, want 2 (1 and 2 clients)", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.Queries == 0 || pt.QPS <= 0 {
			t.Errorf("rung %d made no progress: %+v", pt.Clients, pt)
		}
		if pt.HitRate <= 0 || pt.HitRate >= 1 {
			t.Errorf("rung %d hit rate %.2f; pool smaller than the data must mix hits and faults", pt.Clients, pt.HitRate)
		}
	}
	if rep.PoolShards < 1 {
		t.Errorf("pool shards = %d", rep.PoolShards)
	}
}

func TestRunOneUnknownID(t *testing.T) {
	var buf strings.Builder
	if err := runOne("T99", &buf); err == nil {
		t.Fatal("runOne(T99) should fail for an unknown artifact id")
	}
}
