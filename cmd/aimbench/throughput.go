package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/segment"
	"repro/internal/testdata"
)

// Concurrent-throughput mode (-clients): measures how the read path
// scales once the buffer pool is lock-striped and physical I/O happens
// outside the shard locks. A ladder of client counts (1, N/2, N)
// drives the mixed example workload through streaming QueryRows
// cursors against one shared database whose DEPARTMENTS table is
// generated far larger than the buffer pool, with a simulated
// per-read device latency — so queries keep faulting pages and the
// scaling comes from overlapping those reads across clients, which is
// exactly what the old single-mutex pool (I/O under the lock) could
// not do. The report (BENCH_5.json) records queries/second, p50/p99
// latency and the buffer hit rate per rung, plus the max-vs-1-client
// speedup.

// Fixed benchmark configuration (reported in the JSON artifact).
const (
	benchPoolPages  = 128
	benchPoolShards = 8
)

// slowStore simulates device latency on physical page reads. Writes
// are not delayed: the benchmark database is read-only once loaded,
// so only the fault path matters.
type slowStore struct {
	segment.Store
	lat time.Duration
}

func (s *slowStore) ReadPage(no uint32, buf []byte) error {
	if s.lat > 0 {
		time.Sleep(s.lat)
	}
	return s.Store.ReadPage(no, buf)
}

// benchPoint is one rung of the client ladder.
type benchPoint struct {
	Clients int     `json:"clients"`
	Queries int     `json:"queries"`
	QPS     float64 `json:"qps"`
	P50ms   float64 `json:"p50_ms"`
	P99ms   float64 `json:"p99_ms"`
	HitRate float64 `json:"hit_rate"`
}

// benchReport is the JSON artifact of one throughput run.
type benchReport struct {
	Bench         string       `json:"bench"`
	Workload      string       `json:"workload"`
	DurationSec   float64      `json:"duration_s"`
	Scale         int          `json:"scale"`
	IOLatencyUs   float64      `json:"io_latency_us"`
	DataPages     uint32       `json:"data_pages"`
	PoolPages     int          `json:"pool_pages"`
	PoolShards    int          `json:"pool_shards"`
	Points        []benchPoint `json:"points"`
	SpeedupMaxVs1 float64      `json:"speedup_max_vs_1"`
}

// runThroughput measures the client ladder and writes the JSON report
// to outPath ("" prints to stdout only).
func runThroughput(maxClients, scale int, duration, iolat time.Duration, outPath string, w io.Writer) error {
	if maxClients < 1 {
		return fmt.Errorf("throughput: -clients must be >= 1, got %d", maxClients)
	}
	ladder := []int{1}
	if half := maxClients / 2; half > 1 {
		ladder = append(ladder, half)
	}
	if maxClients > 1 {
		ladder = append(ladder, maxClients)
	}

	// One shared database for every rung: DEPARTMENTS generated well
	// past the pool size, backed by latency-injecting stores.
	cfg := testdata.GenConfig{
		Departments: 120 * scale, ProjsPerDept: 8, MembersPerProj: 12,
		EquipPerDept: 4, Seed: 42,
	}
	db, err := core.BenchOffice(cfg, engine.Options{
		PoolPages:  benchPoolPages,
		PoolShards: benchPoolShards,
		OpenStore: func(segment.ID) (segment.Store, error) {
			return &slowStore{Store: segment.NewMemStore(), lat: iolat}, nil
		},
	})
	if err != nil {
		return err
	}
	defer db.Close()
	// The load left most of the data dirty in the pool; flush it so
	// the measured rungs evict clean pages and never write.
	if err := db.Pool().FlushAll(); err != nil {
		return err
	}
	queries := core.BenchQueries()

	rep := benchReport{
		Bench:       "BENCH_5 concurrent read throughput",
		Workload:    "Examples 1-6, 8 round-robin (streaming QueryRows, generated DEPARTMENTS)",
		DurationSec: duration.Seconds(),
		Scale:       scale,
		IOLatencyUs: float64(iolat) / float64(time.Microsecond),
		DataPages:   totalPages(db),
		PoolPages:   benchPoolPages,
		PoolShards:  db.Pool().ShardCount(),
	}
	fmt.Fprintf(w, "\n================ concurrent read throughput (%s per rung) ================\n\n", duration)
	fmt.Fprintf(w, "data: %d departments over %d pages; pool: %d pages, %d shards; read latency %s\n\n",
		cfg.Departments, rep.DataPages, rep.PoolPages, rep.PoolShards, iolat)
	fmt.Fprintf(w, "%8s %10s %12s %10s %10s %10s\n", "clients", "queries", "qps", "p50 ms", "p99 ms", "hit rate")
	for _, clients := range ladder {
		pt, err := measurePoint(db, queries, clients, duration)
		if err != nil {
			return err
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(w, "%8d %10d %12.1f %10.3f %10.3f %9.1f%%\n",
			pt.Clients, pt.Queries, pt.QPS, pt.P50ms, pt.P99ms, 100*pt.HitRate)
	}
	if base := rep.Points[0].QPS; base > 0 {
		last := rep.Points[len(rep.Points)-1]
		rep.SpeedupMaxVs1 = last.QPS / base
		fmt.Fprintf(w, "\nspeedup at %d clients vs 1: %.2fx\n", last.Clients, rep.SpeedupMaxVs1)
	}

	if outPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("throughput: writing report: %w", err)
		}
		fmt.Fprintf(w, "report written to %s\n", outPath)
	}
	return nil
}

// measurePoint runs one rung: `clients` goroutines stream the
// workload against the shared database for the given duration.
func measurePoint(db *engine.DB, queries []core.ExampleQuery, clients int, duration time.Duration) (benchPoint, error) {
	db.Pool().ResetStats()
	deadline := time.Now().Add(duration)
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; time.Now().Before(deadline); i++ {
				q := queries[i%len(queries)]
				start := time.Now()
				if err := drainOne(db, q.Text); err != nil {
					errs[c] = fmt.Errorf("client %d %s: %v", c, q.ID, err)
					return
				}
				lats[c] = append(lats[c], time.Since(start))
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return benchPoint{}, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	s := db.Pool().Stats()
	pt := benchPoint{
		Clients: clients,
		Queries: len(all),
		QPS:     float64(len(all)) / duration.Seconds(),
		P50ms:   percentileMs(all, 0.50),
		P99ms:   percentileMs(all, 0.99),
	}
	if s.Fetches > 0 {
		pt.HitRate = float64(s.Hits) / float64(s.Fetches)
	}
	return pt, nil
}

// drainOne streams one query to completion and closes the cursor.
func drainOne(db *engine.DB, q string) error {
	rows, err := db.QueryRows(q)
	if err != nil {
		return err
	}
	for rows.Next() {
	}
	rows.Close()
	return rows.Err()
}

// totalPages sums the allocated pages of every registered segment.
func totalPages(db *engine.DB) uint32 {
	var n uint32
	for _, id := range db.Segments() {
		if st := db.Pool().Store(id); st != nil {
			n += st.PageCount()
		}
	}
	return n
}

func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}
