package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/testdata"
)

// Prepared-statement mode (-prepared): measures what the parse →
// bind/plan → execute split buys on repeated parameterized point
// queries. Each rung of a 1, N/2, N client ladder runs the same
// indexed point lookup two ways against one shared in-memory office
// database: unprepared (the literal is formatted into fresh SQL text
// every iteration, so every execution pays lexer, parser, inference,
// path derivation and planner) and prepared (one PreparedStmt per
// client, re-executed with `?` arguments, so re-execution pays none
// of those). The report (BENCH_8.json) records queries/second and
// latency per rung and mode, the prepared-vs-unprepared speedup, and
// the parse/bind counter deltas that prove the prepared side did zero
// per-execution front-end work.

// preparedPointQuery is the parameterized point lookup; the literal
// form substitutes the department number for the placeholder.
const preparedPointQuery = `SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = ?`

// preparedMode is one (mode, clients) cell of the ladder.
type preparedMode struct {
	Mode    string  `json:"mode"` // "unprepared" | "prepared"
	Clients int     `json:"clients"`
	Queries int     `json:"queries"`
	QPS     float64 `json:"qps"`
	P50us   float64 `json:"p50_us"`
	P99us   float64 `json:"p99_us"`
	// Front-end work observed during the rung (process-wide counter
	// deltas): statements parsed and planner runs. The prepared rung's
	// deltas stay at the one-time Prepare cost per client; the
	// unprepared rung's grow with every query.
	Parsed   uint64 `json:"parsed"`
	Prepares uint64 `json:"bind_runs"`
	Chooses  uint64 `json:"planner_runs"`
}

// preparedRung pairs the two modes at one client count.
type preparedRung struct {
	Clients    int            `json:"clients"`
	Unprepared preparedMode   `json:"unprepared"`
	Prepared   preparedMode   `json:"prepared"`
	Speedup    float64        `json:"speedup_prepared_vs_unprepared"`
}

// preparedReport is the JSON artifact of one prepared-ladder run.
type preparedReport struct {
	Bench       string                `json:"bench"`
	Workload    string                `json:"workload"`
	DurationSec float64               `json:"duration_s"`
	Scale       int                   `json:"scale"`
	Rungs       []preparedRung        `json:"rungs"`
	PlanCache   engine.PlanCacheStats `json:"plan_cache"`
}

// runPreparedLadder measures the prepared-vs-unprepared ladder and
// writes the JSON report to outPath ("" prints to stdout only).
func runPreparedLadder(maxClients, scale int, duration time.Duration, outPath string, w io.Writer) error {
	if maxClients < 1 {
		return fmt.Errorf("prepared: -prepared must be >= 1, got %d", maxClients)
	}
	ladder := []int{1}
	if half := maxClients / 2; half > 1 {
		ladder = append(ladder, half)
	}
	if maxClients > 1 {
		ladder = append(ladder, maxClients)
	}

	// A generated office database with an index on the point-query
	// attribute: execution itself is one index lookup, so the
	// per-statement front-end cost dominates the unprepared side.
	cfg := testdata.GenConfig{
		Departments: 200 * scale, ProjsPerDept: 4, MembersPerProj: 6,
		EquipPerDept: 2, Seed: 42,
	}
	db, err := core.BenchOffice(cfg, engine.Options{})
	if err != nil {
		return err
	}
	defer db.Close()
	if err := db.CreateIndex("DEPT_DNO", "DEPARTMENTS", []string{"DNO"}, "HIERARCHICAL"); err != nil {
		return err
	}

	rep := preparedReport{
		Bench:       "BENCH_8 prepared vs unprepared point queries",
		Workload:    preparedPointQuery,
		DurationSec: duration.Seconds(),
		Scale:       scale,
	}
	fmt.Fprintf(w, "\n================ prepared vs unprepared point queries (%s per cell) ================\n\n", duration)
	fmt.Fprintf(w, "data: %d departments, indexed on DNO; query: %s\n\n", cfg.Departments, preparedPointQuery)
	fmt.Fprintf(w, "%8s %-11s %10s %12s %10s %10s %10s %10s\n",
		"clients", "mode", "queries", "qps", "p50 us", "p99 us", "parsed", "planned")
	for _, clients := range ladder {
		rung := preparedRung{Clients: clients}
		for _, mode := range []string{"unprepared", "prepared"} {
			pt, err := measurePrepared(db, mode, clients, cfg.Departments, duration)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%8d %-11s %10d %12.1f %10.1f %10.1f %10d %10d\n",
				pt.Clients, pt.Mode, pt.Queries, pt.QPS, pt.P50us, pt.P99us, pt.Parsed, pt.Chooses)
			if mode == "prepared" {
				rung.Prepared = pt
			} else {
				rung.Unprepared = pt
			}
		}
		if rung.Unprepared.QPS > 0 {
			rung.Speedup = rung.Prepared.QPS / rung.Unprepared.QPS
		}
		fmt.Fprintf(w, "%8s prepared speedup at %d client(s): %.2fx\n", "", clients, rung.Speedup)
		rep.Rungs = append(rep.Rungs, rung)
	}
	rep.PlanCache = db.PlanCacheStats()
	fmt.Fprintf(w, "\nplan cache: %d hits, %d misses, %d invalidations, %d entries\n",
		rep.PlanCache.Hits, rep.PlanCache.Misses, rep.PlanCache.Invalidations, rep.PlanCache.Entries)

	if outPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("prepared: writing report: %w", err)
		}
		fmt.Fprintf(w, "report written to %s\n", outPath)
	}
	return nil
}

// measurePrepared runs one (mode, clients) cell: each client fires
// point lookups at random department numbers for the duration,
// materializing every result.
func measurePrepared(db *engine.DB, mode string, clients, departments int, duration time.Duration) (preparedMode, error) {
	parsed0 := sql.StatementsParsed()
	prepares0 := plan.PrepareCount()
	chooses0 := plan.ChooseCount()

	deadline := time.Now().Add(duration)
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			var stmt *engine.PreparedStmt
			if mode == "prepared" {
				var err error
				stmt, err = db.Prepare(preparedPointQuery)
				if err != nil {
					errs[c] = err
					return
				}
			}
			for time.Now().Before(deadline) {
				dno := int64(100 + rng.Intn(departments))
				start := time.Now()
				var err error
				if stmt != nil {
					_, _, err = stmt.Query(model.Int(dno))
				} else {
					q := fmt.Sprintf("SELECT x.DNO, x.MGRNO, x.BUDGET FROM x IN DEPARTMENTS WHERE x.DNO = %d", dno)
					_, _, err = db.Query(q)
				}
				if err != nil {
					errs[c] = fmt.Errorf("client %d (%s): %v", c, mode, err)
					return
				}
				lats[c] = append(lats[c], time.Since(start))
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return preparedMode{}, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return preparedMode{
		Mode:     mode,
		Clients:  clients,
		Queries:  len(all),
		QPS:      float64(len(all)) / duration.Seconds(),
		P50us:    percentileUs(all, 0.50),
		P99us:    percentileUs(all, 0.99),
		Parsed:   sql.StatementsParsed() - parsed0,
		Prepares: plan.PrepareCount() - prepares0,
		Chooses:  plan.ChooseCount() - chooses0,
	}, nil
}

func percentileUs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Microsecond)
}
