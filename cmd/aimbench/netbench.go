package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/aimnet"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netproto"
	"repro/internal/netserver"
	"repro/internal/testdata"
)

// Network-throughput mode (-net): the same mixed example workload as
// BENCH_5, but driven through aimserver over loopback instead of
// in-process cursors — so the measured overhead is the frame protocol,
// the per-session goroutines, and admission control under connection
// counts far beyond the statement-slot capacity. A ladder of client
// counts (1, 8, 64, N) runs twice per rung: once over the wire and
// once in-process against the same database, so BENCH_9.json shows the
// network tax directly. Above the statement-slot capacity the server
// sheds with typed overload errors and clients retry with jittered
// backoff honoring the retry-after hint; the report counts both the
// server-side sheds and the client-observed ones — the point being
// that p99 stays bounded instead of collapsing into queue meltdown.

// netPoint is one rung of the network ladder.
type netPoint struct {
	Clients    int     `json:"clients"`
	Queries    int     `json:"queries"`
	QPS        float64 `json:"qps"`
	P50ms      float64 `json:"p50_ms"`
	P99ms      float64 `json:"p99_ms"`
	ShedsSrv   uint64  `json:"sheds_server"`
	ShedsSeen  uint64  `json:"sheds_client"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// netBenchReport is the JSON artifact of one -net run (BENCH_9).
type netBenchReport struct {
	Bench         string       `json:"bench"`
	Workload      string       `json:"workload"`
	DurationSec   float64      `json:"duration_s"`
	Scale         int          `json:"scale"`
	MaxSessions   int          `json:"max_sessions"`
	MaxStatements int          `json:"max_statements"`
	Window        uint32       `json:"stream_window"`
	Points        []netPoint   `json:"points"`
	Baseline      []benchPoint `json:"baseline_inprocess"`
}

// runNetBench measures the loopback ladder and the in-process baseline
// over one shared database, writing BENCH_9.json.
func runNetBench(maxClients, scale int, duration time.Duration, outPath string, w io.Writer) error {
	if maxClients < 1 {
		return fmt.Errorf("netbench: -clients must be >= 1, got %d", maxClients)
	}
	ladder := []int{}
	for _, c := range []int{1, 8, 64, maxClients} {
		if c <= maxClients && (len(ladder) == 0 || c > ladder[len(ladder)-1]) {
			ladder = append(ladder, c)
		}
	}

	cfg := testdata.GenConfig{
		Departments: 60 * scale, ProjsPerDept: 6, MembersPerProj: 8,
		EquipPerDept: 3, Seed: 42,
	}
	db, err := core.BenchOffice(cfg, engine.Options{})
	if err != nil {
		return err
	}
	defer db.Close()
	queries := core.BenchQueries()

	const maxStatements = 64
	srv := netserver.New(db, netserver.Options{
		MaxSessions:   maxClients + 16,
		MaxStatements: maxStatements,
		StmtQueueWait: 50 * time.Millisecond,
		RetryAfter:    2 * time.Millisecond,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	rep := netBenchReport{
		Bench:         "BENCH_9 network throughput over loopback",
		Workload:      "Examples 1-6, 8 round-robin (aimnet streaming Query vs in-process QueryRows)",
		DurationSec:   duration.Seconds(),
		Scale:         scale,
		MaxSessions:   maxClients + 16,
		MaxStatements: maxStatements,
		Window:        128,
	}
	fmt.Fprintf(w, "\n================ network throughput over loopback (%s per rung) ================\n\n", duration)
	fmt.Fprintf(w, "server: %d statement slots, %d max sessions; overload shed + client retry above capacity\n\n",
		maxStatements, maxClients+16)
	fmt.Fprintf(w, "%8s %10s %12s %10s %10s %12s | %12s %10s\n",
		"clients", "queries", "qps", "p50 ms", "p99 ms", "sheds", "local qps", "net tax")
	for _, clients := range ladder {
		base, err := measurePoint(db, queries, clients, duration)
		if err != nil {
			return err
		}
		rep.Baseline = append(rep.Baseline, base)
		pt, err := measureNetPoint(srv, queries, clients, duration)
		if err != nil {
			return err
		}
		rep.Points = append(rep.Points, pt)
		tax := "-"
		if pt.QPS > 0 {
			tax = fmt.Sprintf("%.2fx", base.QPS/pt.QPS)
		}
		fmt.Fprintf(w, "%8d %10d %12.1f %10.3f %10.3f %12d | %12.1f %10s\n",
			pt.Clients, pt.Queries, pt.QPS, pt.P50ms, pt.P99ms, pt.ShedsSrv, base.QPS, tax)
	}

	if outPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("netbench: writing report: %w", err)
		}
		fmt.Fprintf(w, "\nreport written to %s\n", outPath)
	}
	return nil
}

// measureNetPoint runs one rung: `clients` connections stream the
// workload over loopback for the given duration. Overload sheds that
// survive the client's own retries are counted and the query is
// retried — a shed is flow control, not a failure.
func measureNetPoint(srv *netserver.Server, queries []core.ExampleQuery, clients int, duration time.Duration) (netPoint, error) {
	before := srv.Stats()
	conns := make([]*aimnet.Conn, clients)
	for i := range conns {
		c, err := aimnet.Dial(srv.Addr(), aimnet.Options{Client: "aimbench"})
		if err != nil {
			return netPoint{}, fmt.Errorf("netbench: dial %d: %w", i, err)
		}
		defer c.Close()
		conns[i] = c
	}

	deadline := time.Now().Add(duration)
	lats := make([][]time.Duration, clients)
	sheds := make([]uint64, clients)
	rows := make([]uint64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn := conns[c]
			for i := c; time.Now().Before(deadline); i++ {
				q := queries[i%len(queries)]
				start := time.Now()
				n, err := drainOneNet(conn, q.Text)
				if err != nil {
					if errors.Is(err, netproto.ErrOverloaded) {
						// Typed shed after client-side retries: back off
						// once more and keep going.
						sheds[c]++
						continue
					}
					errs[c] = fmt.Errorf("netbench client %d %s: %v", c, q.ID, err)
					return
				}
				rows[c] += n
				lats[c] = append(lats[c], time.Since(start))
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return netPoint{}, err
		}
	}

	var all []time.Duration
	var shedSeen, rowsTotal uint64
	for c := 0; c < clients; c++ {
		all = append(all, lats[c]...)
		shedSeen += sheds[c]
		rowsTotal += rows[c]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	after := srv.Stats()
	return netPoint{
		Clients:    clients,
		Queries:    len(all),
		QPS:        float64(len(all)) / duration.Seconds(),
		P50ms:      percentileMs(all, 0.50),
		P99ms:      percentileMs(all, 0.99),
		ShedsSrv:   after.ShedStmts - before.ShedStmts,
		ShedsSeen:  shedSeen,
		RowsPerSec: float64(rowsTotal) / duration.Seconds(),
	}, nil
}

// drainOneNet streams one query over the wire to completion.
func drainOneNet(conn *aimnet.Conn, q string) (uint64, error) {
	ctx := context.Background()
	rows, err := conn.Query(ctx, q)
	if err != nil {
		return 0, err
	}
	for rows.Next() {
	}
	n := rows.N()
	err = rows.Err()
	rows.Close()
	return n, err
}
