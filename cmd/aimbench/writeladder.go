package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/wal"
)

// Write-throughput mode (-writers): measures how group commit
// amortizes fsyncs as concurrent auto-commit writers pile onto one
// leader's sync. A ladder of writer counts (1, N/2, N) drives
// single-row INSERTs — each acknowledged only after its commit record
// is durable — against one disk-backed database per rung, with a
// simulated per-fsync device latency (like the read bench's -iolat),
// so the numbers show the protocol rather than the benchmark host's
// page cache. The report (BENCH_7.json) records commits/second,
// p50/p99 acknowledge latency and the fsync count per rung: with
// group commit working, commits grow much faster than fsyncs up the
// ladder (commits/fsync > 1), because statements keep executing —
// and appending — while the leader's fsync is in flight.

// slowWALStorage injects device latency into every segment-file
// fsync; writes stay at memory speed so fsync dominates, as on a real
// disk.
type slowWALStorage struct {
	wal.Storage
	lat time.Duration
}

func (s *slowWALStorage) Open(name string) (wal.File, error) {
	f, err := s.Storage.Open(name)
	if err != nil {
		return nil, err
	}
	return &slowWALFile{File: f, lat: s.lat}, nil
}

type slowWALFile struct {
	wal.File
	lat time.Duration
}

func (f *slowWALFile) Sync() error {
	if f.lat > 0 {
		time.Sleep(f.lat)
	}
	return f.File.Sync()
}

// writePoint is one rung of the writer ladder.
type writePoint struct {
	Writers  int     `json:"writers"`
	Commits  int     `json:"commits"`
	QPS      float64 `json:"qps"`
	P50ms    float64 `json:"p50_ms"`
	P99ms    float64 `json:"p99_ms"`
	Fsyncs   uint64  `json:"fsyncs"`
	PerFsync float64 `json:"commits_per_fsync"`
}

// writeReport is the JSON artifact of one write-ladder run.
type writeReport struct {
	Bench         string       `json:"bench"`
	Workload      string       `json:"workload"`
	DurationSec   float64      `json:"duration_s"`
	GroupWaitUs   float64      `json:"group_commit_wait_us"`
	FsyncLatUs    float64      `json:"fsync_latency_us"`
	Points        []writePoint `json:"points"`
	SpeedupMaxVs1 float64      `json:"speedup_max_vs_1"`
}

// runWriteLadder measures the writer ladder and writes the JSON
// report to outPath ("" prints to stdout only).
func runWriteLadder(maxWriters int, duration, groupWait, fsyncLat time.Duration, outPath string, w io.Writer) error {
	if maxWriters < 1 {
		return fmt.Errorf("writeladder: -writers must be >= 1, got %d", maxWriters)
	}
	ladder := []int{1}
	if half := maxWriters / 2; half > 1 {
		ladder = append(ladder, half)
	}
	if maxWriters > 1 {
		ladder = append(ladder, maxWriters)
	}

	rep := writeReport{
		Bench:       "BENCH_7 group-commit write throughput",
		Workload:    "concurrent single-row auto-commit INSERTs (disk-backed WAL, simulated fsync latency)",
		DurationSec: duration.Seconds(),
		GroupWaitUs: float64(groupWait) / float64(time.Microsecond),
		FsyncLatUs:  float64(fsyncLat) / float64(time.Microsecond),
	}
	fmt.Fprintf(w, "\n================ group-commit write throughput (%s per rung) ================\n\n", duration)
	fmt.Fprintf(w, "workload: single-row INSERTs, acknowledged after fsync; leader wait %s, fsync latency %s\n\n", groupWait, fsyncLat)
	fmt.Fprintf(w, "%8s %10s %12s %10s %10s %10s %14s\n", "writers", "commits", "commits/s", "p50 ms", "p99 ms", "fsyncs", "commits/fsync")
	for _, writers := range ladder {
		pt, err := measureWritePoint(writers, duration, groupWait, fsyncLat)
		if err != nil {
			return err
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(w, "%8d %10d %12.1f %10.3f %10.3f %10d %14.2f\n",
			pt.Writers, pt.Commits, pt.QPS, pt.P50ms, pt.P99ms, pt.Fsyncs, pt.PerFsync)
	}
	if base := rep.Points[0].QPS; base > 0 {
		last := rep.Points[len(rep.Points)-1]
		rep.SpeedupMaxVs1 = last.QPS / base
		fmt.Fprintf(w, "\nspeedup at %d writers vs 1: %.2fx\n", last.Writers, rep.SpeedupMaxVs1)
	}

	if outPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("writeladder: writing report: %w", err)
		}
		fmt.Fprintf(w, "report written to %s\n", outPath)
	}
	return nil
}

// measureWritePoint runs one rung: a fresh disk-backed database,
// `writers` goroutines inserting disjoint keys until the deadline.
// Fresh state per rung keeps the table small and the fsync count
// attributable to the rung alone.
func measureWritePoint(writers int, duration, groupWait, fsyncLat time.Duration) (writePoint, error) {
	dir, err := os.MkdirTemp("", "aimbench-writes-*")
	if err != nil {
		return writePoint{}, err
	}
	defer os.RemoveAll(dir)
	db, err := engine.Open(engine.Options{
		Dir:             dir,
		GroupCommitWait: groupWait,
		OpenWALStorage: func() (wal.Storage, error) {
			return &slowWALStorage{Storage: wal.NewDirStorage(dir), lat: fsyncLat}, nil
		},
	})
	if err != nil {
		return writePoint{}, err
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE COMMITS (ID INT, W INT)`); err != nil {
		return writePoint{}, err
	}
	syncs0 := db.WALStats().Syncs

	deadline := time.Now().Add(duration)
	lats := make([][]time.Duration, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for c := 0; c < writers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				stmt := fmt.Sprintf(`INSERT INTO COMMITS VALUES (%d, %d)`, c*1_000_000+i, c)
				start := time.Now()
				if _, err := db.Exec(stmt); err != nil {
					errs[c] = fmt.Errorf("writer %d: %v", c, err)
					return
				}
				lats[c] = append(lats[c], time.Since(start))
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return writePoint{}, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pt := writePoint{
		Writers: writers,
		Commits: len(all),
		QPS:     float64(len(all)) / duration.Seconds(),
		P50ms:   percentileMs(all, 0.50),
		P99ms:   percentileMs(all, 0.99),
		Fsyncs:  db.WALStats().Syncs - syncs0,
	}
	if pt.Fsyncs > 0 {
		pt.PerFsync = float64(pt.Commits) / float64(pt.Fsyncs)
	}
	return pt, nil
}
