// Command aimbench regenerates every table (T1-T8) and figure
// (F1-F8) of the paper and runs the quantitative storage and
// addressing experiments behind its qualitative claims.
//
// Usage:
//
//	aimbench              # run everything
//	aimbench -run T5      # one artifact
//	aimbench -run F7      # one figure
//	aimbench -experiments # only the quantitative experiments
//	aimbench -scale 4     # scale factor for the experiment workloads
//	aimbench -clients 8 -duration 5s -out BENCH_5.json
//	                      # concurrent read-throughput mode: a 1, N/2, N
//	                      # client ladder over the Example-1..8 workload
//	aimbench -net -clients 256 -nout BENCH_9.json
//	                      # the same workload through aimserver over
//	                      # loopback: qps/p50/p99/sheds vs the
//	                      # in-process baseline
//	aimbench -repl -duration 3s -rout BENCH_10.json
//	                      # replication ladder: primary write qps with
//	                      # 0/1/2 WAL-shipping followers, follower read
//	                      # qps and apply lag
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/testdata"
)

func main() {
	run := flag.String("run", "", "single artifact id (T1..T8, F1..F8)")
	experimentsOnly := flag.Bool("experiments", false, "run only the quantitative experiments")
	scale := flag.Int("scale", 1, "workload scale factor for the experiments")
	dir := flag.String("dir", "", "materialize the office database on disk at this directory after the run (inspect it with aimdoctor)")
	clients := flag.Int("clients", 0, "concurrent-throughput mode: measure a 1..N client ladder instead of the paper artifacts")
	duration := flag.Duration("duration", 2*time.Second, "how long each throughput rung runs (with -clients)")
	iolat := flag.Duration("iolat", 150*time.Microsecond, "simulated device latency per physical page read (with -clients)")
	out := flag.String("out", "BENCH_5.json", "throughput report path (with -clients; empty disables the file)")
	writers := flag.Int("writers", 0, "group-commit write mode: measure a 1..N concurrent-writer ladder (commits/s, latency, fsyncs)")
	groupWait := flag.Duration("groupwait", 200*time.Microsecond, "group-commit leader wait (with -writers)")
	fsyncLat := flag.Duration("fsynclat", 2*time.Millisecond, "simulated device latency per WAL fsync (with -writers)")
	wout := flag.String("wout", "BENCH_7.json", "write-ladder report path (with -writers; empty disables the file)")
	prepared := flag.Int("prepared", 0, "prepared-statement mode: measure a prepared-vs-unprepared point-query ladder up to N clients")
	pout := flag.String("pout", "BENCH_8.json", "prepared-ladder report path (with -prepared; empty disables the file)")
	netMode := flag.Bool("net", false, "network mode: drive the -clients ladder through aimserver over loopback instead of in-process")
	nout := flag.String("nout", "BENCH_9.json", "network-ladder report path (with -net; empty disables the file)")
	replMode := flag.Bool("repl", false, "replication mode: primary write qps with 0/1/2 WAL-shipping followers, follower read qps and apply lag")
	rout := flag.String("rout", "BENCH_10.json", "replication report path (with -repl; empty disables the file)")
	flag.Parse()

	if *replMode {
		if err := runReplBench(*writers, *duration, *rout, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "aimbench:", err)
			os.Exit(1)
		}
		return
	}

	if *netMode {
		n := *clients
		if n == 0 {
			n = 8
		}
		if err := runNetBench(n, *scale, *duration, *nout, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "aimbench:", err)
			os.Exit(1)
		}
		return
	}

	if *prepared > 0 {
		if err := runPreparedLadder(*prepared, *scale, *duration, *pout, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "aimbench:", err)
			os.Exit(1)
		}
		return
	}
	if *writers > 0 {
		if err := runWriteLadder(*writers, *duration, *groupWait, *fsyncLat, *wout, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "aimbench:", err)
			os.Exit(1)
		}
		return
	}
	if *clients > 0 {
		if err := runThroughput(*clients, *scale, *duration, *iolat, *out, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "aimbench:", err)
			os.Exit(1)
		}
		materialize(*dir)
		return
	}
	if *run != "" {
		if err := runOne(*run, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "aimbench:", err)
			os.Exit(1)
		}
		materialize(*dir)
		return
	}
	if !*experimentsOnly {
		for _, id := range core.AllIDs() {
			if err := runOne(id, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "aimbench: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
	if err := runExperiments(*scale); err != nil {
		fmt.Fprintln(os.Stderr, "aimbench:", err)
		os.Exit(1)
	}
	materialize(*dir)
}

// materialize writes the office database to disk at dir (when set) so
// post-run tooling — aimdoctor scan/verify in particular — has a real
// bench-produced database to work on.
func materialize(dir string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "aimbench: materialize:", err)
		os.Exit(1)
	}
	db, err := core.OfficeAt(dir)
	if err == nil {
		err = db.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aimbench: materialize:", err)
		os.Exit(1)
	}
	fmt.Printf("\noffice database written to %s (try: aimdoctor -dir %s verify)\n", dir, dir)
}

// runOne regenerates a single paper artifact and writes its report.
func runOne(id string, out io.Writer) error {
	rep, err := core.Run(strings.ToUpper(id))
	if err != nil {
		return err
	}
	printReport(out, rep)
	return nil
}

func printReport(out io.Writer, rep core.Report) {
	fmt.Fprintf(out, "\n================ %s — %s ================\n\n", rep.ID, rep.Title)
	fmt.Fprintln(out, rep.Text)
}

func runExperiments(scale int) error {
	fmt.Printf("\n================ quantitative experiments (scale %d) ================\n", scale)

	fmt.Println("\n--- E1: storage structures SS1/SS2/SS3 at scale (§4.1, /DGW85/) ---")
	layoutRows, err := core.CompareLayouts(testdata.GenConfig{
		Departments: 50 * scale, ProjsPerDept: 8, MembersPerProj: 15, EquipPerDept: 5, Seed: 42,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %10s %10s %8s %12s %12s %12s\n",
		"layout", "MD subtuples", "MD bytes", "pointers", "pages", "build fetch", "read fetch", "nav fetch")
	for _, r := range layoutRows {
		fmt.Printf("%-6s %12d %10d %10d %8d %12d %12d %12d\n",
			r.Layout, r.MDSubtuples, r.MDBytes, r.Pointers, r.Pages,
			r.BuildFetches, r.ReadFetches, r.NavFetches)
	}
	fmt.Println("shape: #MD subtuples SS1 > SS3 > SS2; SS3 navigates cheapest (AIM-II's compromise)")

	fmt.Println("\n--- E2: index address strategies (Fig 7 at scale, §4.2) ---")
	stratRes, err := core.CompareIndexStrategies(testdata.GenConfig{
		Departments: 100 * scale, ProjsPerDept: 8, MembersPerProj: 15, EquipPerDept: 4,
		Seed: 7, ConsultantEvery: 9,
	})
	if err != nil {
		return err
	}
	fmt.Printf("conjunctive query: project PNO=%d with a Consultant\n", stratRes.TargetPNO)
	fmt.Printf("%-14s %16s %10s\n", "strategy", "subtuple fetches", "results")
	for _, r := range stratRes.Rows {
		fmt.Printf("%-14s %16d %10d\n", r.Strategy, r.Fetches, r.Results)
	}
	fmt.Println("shape: HIERARCHICAL << ROOT << DATA (hierarchical addresses avoid all scans)")

	fmt.Println("\n--- E3: clustering — local address spaces vs Lorie's 'on top' tuples (§1, §4.1) ---")
	clusterRows, err := core.CompareClustering(16*scale, 5, 12, 40, 3)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s %14s %10s %8s\n", "system", "physical reads", "fetches", "pages")
	for _, r := range clusterRows {
		fmt.Printf("%-34s %14d %10d %8d\n", r.System, r.PhysicalReads, r.Fetches, r.PagesTotal)
	}
	fmt.Println("shape: cold whole-object reads touch far fewer pages with clustering")

	fmt.Println("\n--- E4: page-level checkout cost vs object size (§4.1) ---")
	checkoutRows, err := core.MeasureCheckout([]int{10, 100, 1000, 5000})
	if err != nil {
		return err
	}
	fmt.Printf("%8s %10s %7s %18s\n", "members", "subtuples", "pages", "relocate fetches")
	for _, r := range checkoutRows {
		fmt.Printf("%8d %10d %7d %18d\n", r.Members, r.Subtuples, r.Pages, r.RelocateFetches)
	}
	fmt.Println("shape: relocation cost follows pages, not subtuples (Mini TIDs survive the move)")

	fmt.Println("\n--- E5: ASOF cost vs version-chain depth (§5) ---")
	asofRows, err := core.MeasureASOF([]int{1, 10, 100, 1000})
	if err != nil {
		return err
	}
	fmt.Printf("%10s %16s %16s\n", "versions", "latest fetches", "oldest fetches")
	for _, r := range asofRows {
		fmt.Printf("%10d %16d %16d\n", r.Versions, r.FetchesLatest, r.FetchesOldest)
	}
	fmt.Println("shape: current state is O(1); time travel walks the version chain")
	return nil
}
