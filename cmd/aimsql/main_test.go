package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
)

// captureStdout runs fn with os.Stdout redirected to a pipe.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

func TestRunScriptEndToEnd(t *testing.T) {
	db, err := aim.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	out := captureStdout(t, func() {
		err = runScript(&session{db: db.Engine()}, `
CREATE TABLE T (A INT, S TABLE OF (B STRING));
INSERT INTO T VALUES (1, {('x'), ('y')});
SELECT t.A, COUNT(t.S) AS N FROM t IN T;
SHOW TABLES;
`)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table T created", "1 tuple(s) inserted", "(1 tuple(s))", "NF2"} {
		if !strings.Contains(out, want) {
			t.Errorf("script output missing %q:\n%s", want, out)
		}
	}
}

func TestRunScriptFromFile(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "s.sql")
	os.WriteFile(script, []byte(`
CREATE TABLE F (X INT);
INSERT INTO F VALUES (42);
SELECT f.X FROM f IN F;
`), 0o644)
	db, err := aim.Open(aim.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	data, err := os.ReadFile(script)
	if err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		err = runScript(&session{db: db.Engine()}, string(data))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "42") {
		t.Errorf("script output:\n%s", out)
	}
}

func TestDemoDatabaseLoads(t *testing.T) {
	eng, err := core.Office()
	if err != nil {
		t.Fatal(err)
	}
	db := wrap(eng)
	defer db.Close()
	out := captureStdout(t, func() {
		err = runScript(&session{db: db.Engine()}, `SELECT x.DNO FROM x IN DEPARTMENTS;`)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "314") {
		t.Errorf("demo output:\n%s", out)
	}
}

func TestScriptErrorPropagates(t *testing.T) {
	db, _ := aim.OpenMemory()
	defer db.Close()
	var err error
	captureStdout(t, func() {
		err = runScript(&session{db: db.Engine()}, `SELECT * FROM x IN NOPE;`)
	})
	if err == nil {
		t.Error("bad script succeeded")
	}
}

// The interactive loop: multi-line statements assemble until a
// semicolon, \h prints help, \q exits, and errors do not kill the
// session.
func TestREPL(t *testing.T) {
	db, _ := aim.OpenMemory()
	defer db.Close()
	input := strings.NewReader(`CREATE TABLE R (A INT,
  S TABLE OF (B INT));
INSERT INTO R VALUES (7, {(8)});
SELECT r.A,
       COUNT(r.S) AS N
FROM r IN R;
SELECT * FROM x IN MISSING;
\h
\q
`)
	out := captureStdout(t, func() {
		repl(&session{db: db.Engine()}, input)
	})
	for _, want := range []string{"table R created", "1 tuple(s) inserted", "(1 tuple(s))", "Statements (terminate with ';')"} {
		if !strings.Contains(out, want) {
			t.Errorf("repl output missing %q:\n%s", want, out)
		}
	}
	// The failing statement must not have aborted the loop: help came
	// after the error.
	if !strings.Contains(out, "nf2>") {
		t.Errorf("prompt missing:\n%s", out)
	}
}

// EOF terminates the loop cleanly.
func TestREPLEOF(t *testing.T) {
	db, _ := aim.OpenMemory()
	defer db.Close()
	captureStdout(t, func() {
		repl(&session{db: db.Engine()}, strings.NewReader("SELECT 1\n")) // no semicolon, then EOF
	})
}

// TestTimeoutFailsStatement: with -timeout set, a statement that runs
// past its deadline fails cleanly; the database stays usable.
func TestTimeoutFailsStatement(t *testing.T) {
	db, _ := aim.OpenMemory()
	defer db.Close()
	var setup strings.Builder
	setup.WriteString(`CREATE TABLE BIG (ID INT)`)
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&setup, ";INSERT INTO BIG VALUES (%d)", i)
	}
	var err error
	captureStdout(t, func() { err = runScript(&session{db: db.Engine()}, setup.String()) })
	if err != nil {
		t.Fatal(err)
	}
	stmtTimeout = time.Millisecond
	defer func() { stmtTimeout = 0 }()
	captureStdout(t, func() {
		err = runScript(&session{db: db.Engine()}, `SELECT x.ID FROM x IN BIG, y IN BIG WHERE x.ID = y.ID;`)
	})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want deadline error, got %v", err)
	}
	stmtTimeout = 0
	out := captureStdout(t, func() {
		err = runScript(&session{db: db.Engine()}, `SELECT x.ID FROM x IN BIG WHERE x.ID = 7;`)
	})
	if err != nil {
		t.Fatalf("database unusable after timeout: %v", err)
	}
	if !strings.Contains(out, "(1 tuple(s))") {
		t.Errorf("post-timeout query output:\n%s", out)
	}
}

// TestREPLContinuesPastMidChunkError: a chunk with a failing
// statement in the middle still executes the statements after it —
// per-statement execution, not whole-chunk abort.
func TestREPLContinuesPastMidChunkError(t *testing.T) {
	db, _ := aim.OpenMemory()
	defer db.Close()
	input := strings.NewReader(`CREATE TABLE C (A INT); SELECT * FROM x IN MISSING; INSERT INTO C VALUES (9);
SELECT c.A FROM c IN C;
\q
`)
	out := captureStdout(t, func() {
		repl(&session{db: db.Engine()}, input)
	})
	for _, want := range []string{"table C created", "1 tuple(s) inserted", "(1 tuple(s))"} {
		if !strings.Contains(out, want) {
			t.Errorf("repl output missing %q:\n%s", want, out)
		}
	}
}
