// Command aimsql is an interactive shell (and script runner) for the
// AIM-II NF² SQL dialect.
//
// Usage:
//
//	aimsql [-db DIR] [-f SCRIPT] [-demo] [-timeout DUR] [-connect HOST:PORT]
//
// Without -db the database is in-memory and vanishes on exit. With
// -f the script file is executed and the shell exits; otherwise
// statements are read from stdin, terminated by semicolons. -demo
// preloads the paper's office fixtures (Tables 1-8). -timeout bounds
// each statement's execution; a statement past its deadline fails
// (and, if mutating, rolls back) without killing the session.
// -connect runs the same shell against a live aimserver instead of an
// embedded engine: statements ship over the wire, SELECTs stream row
// by row, and the transaction lives server-side.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	aim "repro"
	"repro/aimnet"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sql"
)

// stmtTimeout bounds each statement's execution (0 = unlimited); set
// by the -timeout flag.
var stmtTimeout time.Duration

func main() {
	dir := flag.String("db", "", "database directory (empty = in-memory)")
	script := flag.String("f", "", "execute this script file and exit")
	demo := flag.Bool("demo", false, "preload the paper's office fixtures")
	connect := flag.String("connect", "", "connect to an aimserver at host:port instead of embedding the engine")
	flag.DurationVar(&stmtTimeout, "timeout", 0, "per-statement timeout (0 = none)")
	flag.Parse()

	if *connect != "" {
		if *dir != "" || *demo {
			fmt.Fprintln(os.Stderr, "aimsql: -connect uses the server's database; -db/-demo ignored")
		}
		c, err := aimnet.Dial(*connect, aimnet.Options{Client: "aimsql"})
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		r := &remote{c: c}
		if *script != "" {
			data, err := os.ReadFile(*script)
			if err != nil {
				fatal(err)
			}
			if err := runScript(r, string(data)); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Printf("AIM-II NF² SQL shell — connected to %s (session %d), \\q quits\n", *connect, c.SessionID())
		repl(r, os.Stdin)
		return
	}

	var db *aim.DB
	var err error
	if *demo {
		if *dir != "" {
			fmt.Fprintln(os.Stderr, "aimsql: -demo uses an in-memory database; -db ignored")
		}
		eng, err := core.Office()
		if err != nil {
			fatal(err)
		}
		db = wrap(eng)
	} else {
		db, err = aim.Open(aim.Options{Dir: *dir})
		if err != nil {
			fatal(err)
		}
	}
	defer db.Close()

	s := &session{db: db.Engine()}
	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		if err := runScript(s, string(data)); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println("AIM-II NF² SQL shell — statements end with ';', \\q quits, \\h for help")
	repl(s, os.Stdin)
}

// session holds the shell's connection state: the database plus the
// open transaction, if a BEGIN is pending. Statements inside a
// transaction read its snapshot and buffer their writes until COMMIT.
// The session works on the engine handle directly so each input chunk
// is parsed exactly once — the parsed statements drive execution, the
// txn> prompt logic, and the streaming output alike.
type session struct {
	db *engine.DB
	tx *engine.Txn
}

// inTxn reports whether a transaction is open.
func (s *session) inTxn() bool { return s.tx != nil }

// exec runs one parsed statement, printing its results.
func (s *session) exec(st sql.Stmt) error { return execStmt(s, st) }

// abort rolls back the open transaction, if any.
func (s *session) abort() {
	if s.tx != nil {
		s.tx.Rollback()
		s.tx = nil
	}
}

// shell abstracts where statements execute: a session runs them on the
// embedded engine, a remote shell (-connect) ships them to an
// aimserver over the wire. The REPL and script runner work against
// either.
type shell interface {
	// inTxn reports whether the shell has an open transaction (the
	// txn> prompt).
	inTxn() bool
	// exec runs one parsed statement, printing its results.
	exec(st sql.Stmt) error
	// abort rolls back the open transaction, if any.
	abort()
}

// wrap adapts an engine handle opened by core.Office into the public
// facade (same underlying type).
func wrap(eng *engine.DB) *aim.DB { return aim.FromEngine(eng) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aimsql:", err)
	os.Exit(1)
}

// execCtx returns the context for one statement, honoring -timeout.
func execCtx() (context.Context, context.CancelFunc) {
	if stmtTimeout > 0 {
		return context.WithTimeout(context.Background(), stmtTimeout)
	}
	return context.Background(), func() {}
}

// runScript executes a script one statement at a time (each under its
// own timeout), printing results as they arrive and stopping at the
// first error. Script mode (-f) uses it: a failure exits nonzero. A
// script that ends with a transaction still open rolls it back and
// fails.
func runScript(s shell, script string) error {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		if err := s.exec(st); err != nil {
			s.abort()
			return err
		}
	}
	if s.inTxn() {
		s.abort()
		return fmt.Errorf("script ended with an open transaction (missing COMMIT or ROLLBACK); rolled back")
	}
	return nil
}

// runChunk executes one REPL input chunk statement by statement: an
// error (including a timeout) is printed and the remaining statements
// still run — a failed statement has been rolled back (or, inside a
// transaction, has discarded only its own buffered effects), so the
// session is safe to continue.
func runChunk(s shell, chunk string) {
	stmts, err := sql.ParseScript(chunk)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	for _, st := range stmts {
		if err := s.exec(st); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

// execStmt runs one statement under its own timeout. BEGIN, COMMIT
// and ROLLBACK manage the session transaction; SELECTs go through the
// streaming cursor — each result tuple is printed as it is produced,
// so the first rows of a long scan appear immediately; everything
// else executes through the materializing API (the session
// transaction's, when one is open).
func execStmt(s *session, st sql.Stmt) error {
	ctx, cancel := execCtx()
	defer cancel()
	switch st.Statement.(type) {
	case *sql.Begin:
		if s.inTxn() {
			return fmt.Errorf("BEGIN inside an open transaction (transactions do not nest)")
		}
		tx, err := s.db.Begin()
		if err != nil {
			return err
		}
		s.tx = tx
		fmt.Println("transaction started")
		return nil
	case *sql.Commit:
		if !s.inTxn() {
			return fmt.Errorf("COMMIT without BEGIN")
		}
		tx := s.tx
		s.tx = nil
		if err := tx.Commit(); err != nil {
			return err
		}
		fmt.Println("transaction committed")
		return nil
	case *sql.Rollback:
		if !s.inTxn() {
			return fmt.Errorf("ROLLBACK without BEGIN")
		}
		s.tx.Rollback()
		s.tx = nil
		fmt.Println("transaction rolled back")
		return nil
	case *sql.Select:
		return streamSelect(ctx, s, st)
	}
	// Execute the already-parsed statement — no re-parse.
	var res aim.Result
	var err error
	if s.inTxn() {
		res, err = s.tx.ExecStmtContext(ctx, st)
	} else {
		res, err = s.db.ExecStmtContext(ctx, st)
	}
	if err != nil {
		return err
	}
	printResult(res)
	return nil
}

// streamSelect prints a query's rows as they stream from the cursor,
// reusing the chunk's parse.
func streamSelect(ctx context.Context, s *session, st sql.Stmt) error {
	var rows *aim.Rows
	var err error
	if s.inTxn() {
		rows, err = s.tx.QueryRowsStmt(ctx, st)
	} else {
		rows, err = s.db.QueryRowsStmt(ctx, st)
	}
	if err != nil {
		return err
	}
	defer rows.Close()
	names := make([]string, len(rows.Type().Attrs))
	for i, a := range rows.Type().Attrs {
		names[i] = a.Name
	}
	fmt.Println("-- " + strings.Join(names, " | "))
	n := 0
	for rows.Next() {
		fmt.Println(rows.Tuple())
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("(%d tuple(s))\n", n)
	return nil
}

func printResult(r aim.Result) {
	switch {
	case r.Table != nil:
		fmt.Print(aim.Format("RESULT", r.Type, r.Table))
		fmt.Printf("(%d tuple(s))\n", r.Table.Len())
	case r.Message != "":
		fmt.Println(r.Message)
	default:
		fmt.Printf("%d tuple(s) affected\n", r.Count)
	}
}

func repl(s shell, in io.Reader) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	continuation := false
	for {
		switch {
		case continuation:
			fmt.Print("...> ")
		case s.inTxn():
			fmt.Print("txn> ")
		default:
			fmt.Print("nf2> ")
		}
		if !sc.Scan() {
			fmt.Println()
			if s.inTxn() {
				s.abort()
				fmt.Fprintln(os.Stderr, "open transaction rolled back")
			}
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, `\quit`, "exit", "quit":
			if s.inTxn() {
				s.abort()
				fmt.Fprintln(os.Stderr, "open transaction rolled back")
			}
			return
		case `\h`, `\help`:
			printHelp()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			continuation = true
			continue
		}
		stmt := buf.String()
		buf.Reset()
		continuation = false
		runChunk(s, stmt)
	}
}

func printHelp() {
	fmt.Print(`Statements (terminate with ';'):
  CREATE TABLE name (A INT, B TABLE OF (...), C LIST OF (...)) [VERSIONED] [LAYOUT SS1|SS2|SS3]
  CREATE [TEXT] INDEX name ON table (path.to.attr) [USING DATA|ROOT|HIERARCHICAL]
  INSERT INTO table VALUES (1, 'x', {(...)}, <(...)>), ...
  INSERT INTO y.SUB FROM x IN T, y IN x.SUB2 WHERE ... VALUES (...)
  SELECT [DISTINCT] items FROM v IN T [ASOF ts], w IN v.SUB [WHERE pred] [ORDER BY e [DESC]]
    items: expr [AS name] | NAME = (SELECT ...)    nested result construction
    pred:  =, <>, <, <=, >, >=, AND, OR, NOT, EXISTS v IN p: pred, ALL v IN p: pred,
           attr CONTAINS '*mask*', path[k] list indexing, COUNT(path)
  UPDATE v IN T SET A = expr [WHERE ...];  UPDATE v FROM ... SET ...
  DELETE v FROM v IN T [, w IN v.SUB] WHERE ...
  ALTER TABLE t ADD path.to.NEWATTR INT|FLOAT|STRING|BOOL|TIME
  EXPLAIN SELECT ...                    show the chosen access paths
  SHOW TABLES;  DESCRIBE table;  DROP TABLE t;  DROP INDEX i
  BEGIN;  COMMIT;  ROLLBACK             snapshot-isolated transactions
`)
}
