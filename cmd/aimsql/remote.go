package main

import (
	"context"
	"fmt"
	"strings"

	aim "repro"
	"repro/aimnet"
	"repro/internal/sql"
)

// remote is the shell over a live aimserver (-connect). Statements are
// parsed locally (for chunking and the txn prompt) but execute on the
// server: SELECTs stream row by row over the wire, everything else
// goes through Exec with materialized results. The transaction lives
// server-side; the prompt tracks the TxnOpen flag every response
// carries.
type remote struct {
	c *aimnet.Conn
}

func (r *remote) inTxn() bool { return r.c.TxnOpen() }

func (r *remote) abort() {
	if r.c.TxnOpen() {
		r.c.Exec(context.Background(), "ROLLBACK")
	}
}

func (r *remote) exec(st sql.Stmt) error {
	ctx, cancel := execCtx()
	defer cancel()
	if _, ok := st.Statement.(*sql.Select); ok {
		return r.streamSelect(ctx, st.Text)
	}
	results, err := r.c.Exec(ctx, st.Text)
	if err != nil {
		return err
	}
	for _, res := range results {
		printNetResult(res)
	}
	return nil
}

// streamSelect prints rows as they arrive from the server, mirroring
// the local shell's streaming output.
func (r *remote) streamSelect(ctx context.Context, text string) error {
	rows, err := r.c.Query(ctx, text)
	if err != nil {
		return err
	}
	defer rows.Close()
	names := make([]string, len(rows.Type().Attrs))
	for i, a := range rows.Type().Attrs {
		names[i] = a.Name
	}
	fmt.Println("-- " + strings.Join(names, " | "))
	n := 0
	for rows.Next() {
		fmt.Println(rows.Tuple())
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("(%d tuple(s))\n", n)
	return nil
}

func printNetResult(res aimnet.Result) {
	switch {
	case res.Table != nil:
		fmt.Print(aim.Format("RESULT", res.Type, res.Table))
		fmt.Printf("(%d tuple(s))\n", len(res.Table.Tuples))
	case res.Message != "":
		fmt.Println(res.Message)
	default:
		fmt.Printf("%d tuple(s) affected\n", res.Count)
	}
}
