// Command aimdoctor audits and repairs an AIM-II database directory.
//
// Usage:
//
//	aimdoctor -dir DB scan        # quick structural audit (pages, objects)
//	aimdoctor -dir DB verify      # full audit incl. index cross-checks
//	aimdoctor -dir DB repair      # repair: WAL redo, salvage, amputate
//	aimdoctor -dir DB checkpoint  # fuzzy checkpoint + retire dead WAL segments
//	aimdoctor -dir DB -json verify
//
// The exit status is 0 when the database is healthy (after repair, in
// repair mode), 1 when problems remain, 2 on usage or I/O errors.
// With -json the machine-readable report is written to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/doctor"
	"repro/internal/engine"
)

func main() {
	dir := flag.String("dir", "", "database directory (required)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable JSON report")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: aimdoctor -dir DB [-json] {scan|verify|repair|checkpoint}")
		flag.PrintDefaults()
	}
	flag.Parse()

	mode := flag.Arg(0)
	if *dir == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	opts := engine.Options{Dir: *dir}

	var rep *doctor.Report
	var err error
	switch mode {
	case "scan":
		rep, err = doctor.Scan(opts)
	case "verify":
		rep, err = doctor.Verify(opts)
	case "repair":
		rep, err = doctor.Repair(opts)
	case "checkpoint":
		if err := checkpoint(opts, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "aimdoctor:", err)
			os.Exit(2)
		}
		return
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aimdoctor:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "aimdoctor:", err)
			os.Exit(2)
		}
	} else {
		fmt.Print(doctor.FormatText(rep))
	}
	if !rep.Healthy {
		os.Exit(1)
	}
}

// checkpoint opens the database (running recovery if needed), writes
// a fuzzy checkpoint — flushing every dirty page and logging the
// durable horizon — and retires the WAL segments recovery can no
// longer need. It prints the log's shape before and after, so an
// operator can see how much replay work the checkpoint saved.
func checkpoint(opts engine.Options, jsonOut bool) error {
	db, err := engine.Open(opts)
	if err != nil {
		return err
	}
	defer db.Close()
	before := db.WALStats()
	if err := db.WALCheckpoint(); err != nil {
		return err
	}
	after := db.WALStats()
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Before engine.WALStats `json:"before"`
			After  engine.WALStats `json:"after"`
		}{before, after})
	}
	fmt.Printf("checkpoint written at LSN %d\n", after.CheckpointLSN)
	fmt.Printf("replay tail: %d bytes -> %d bytes\n", before.End-before.TailStart, after.End-after.TailStart)
	fmt.Printf("retained segments: %d -> %d\n", before.Segments, after.Segments)
	return nil
}
