// Command aimdoctor audits and repairs an AIM-II database directory.
//
// Usage:
//
//	aimdoctor -dir DB scan      # quick structural audit (pages, objects)
//	aimdoctor -dir DB verify    # full audit incl. index cross-checks
//	aimdoctor -dir DB repair    # repair: WAL redo, salvage, amputate
//	aimdoctor -dir DB -json verify
//
// The exit status is 0 when the database is healthy (after repair, in
// repair mode), 1 when problems remain, 2 on usage or I/O errors.
// With -json the machine-readable report is written to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/doctor"
	"repro/internal/engine"
)

func main() {
	dir := flag.String("dir", "", "database directory (required)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable JSON report")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: aimdoctor -dir DB [-json] {scan|verify|repair}")
		flag.PrintDefaults()
	}
	flag.Parse()

	mode := flag.Arg(0)
	if *dir == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	opts := engine.Options{Dir: *dir}

	var rep *doctor.Report
	var err error
	switch mode {
	case "scan":
		rep, err = doctor.Scan(opts)
	case "verify":
		rep, err = doctor.Verify(opts)
	case "repair":
		rep, err = doctor.Repair(opts)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aimdoctor:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "aimdoctor:", err)
			os.Exit(2)
		}
	} else {
		fmt.Print(doctor.FormatText(rep))
	}
	if !rep.Healthy {
		os.Exit(1)
	}
}
