// Command aimserver serves an AIM-II database over the netproto wire
// protocol so any number of aimnet clients (including aimsql -connect)
// can share one engine.
//
// Usage:
//
//	aimserver [-db DIR] [-addr HOST:PORT] [-demo] [flags]
//
// Without -db the database is in-memory and vanishes on exit. -demo
// preloads the paper's office fixtures. The server applies admission
// control (-max-sessions, -max-stmts with a bounded wait queue) and
// sheds excess load with typed overload errors carrying a retry-after
// hint; -stmt-timeout and -idle-timeout bound statements and idle
// sessions.
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting,
// refuses new statements, lets in-flight ones finish up to
// -drain-timeout (then cancels them), tears every session down with
// its transaction rolled back and zero pinned pages, checkpoints the
// WAL, and closes the engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	aim "repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netserver"
)

func main() {
	dir := flag.String("db", "", "database directory (empty = in-memory)")
	addr := flag.String("addr", "127.0.0.1:4477", "listen address")
	demo := flag.Bool("demo", false, "preload the paper's office fixtures")
	maxSessions := flag.Int("max-sessions", 256, "max concurrently open sessions")
	maxStmts := flag.Int("max-stmts", 64, "max concurrently executing statements")
	stmtTimeout := flag.Duration("stmt-timeout", 0, "per-statement timeout (0 = none)")
	idleTimeout := flag.Duration("idle-timeout", 0, "reap sessions idle this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "grace for in-flight statements on shutdown")
	flag.Parse()

	var eng *engine.DB
	if *demo {
		if *dir != "" {
			fmt.Fprintln(os.Stderr, "aimserver: -demo uses an in-memory database; -db ignored")
		}
		var err error
		eng, err = core.Office()
		if err != nil {
			fatal(err)
		}
	} else {
		db, err := aim.Open(aim.Options{Dir: *dir})
		if err != nil {
			fatal(err)
		}
		eng = db.Engine()
	}

	srv := netserver.New(eng, netserver.Options{
		MaxSessions:   *maxSessions,
		MaxStatements: *maxStmts,
		StmtTimeout:   *stmtTimeout,
		IdleTimeout:   *idleTimeout,
		DrainTimeout:  *drainTimeout,
	})
	if err := srv.Start(*addr); err != nil {
		fatal(err)
	}
	fmt.Printf("aimserver listening on %s (max %d sessions, %d concurrent statements)\n",
		srv.Addr(), *maxSessions, *maxStmts)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if err := waitAndDrain(srv, eng, sig, *drainTimeout); err != nil {
		fatal(err)
	}
}

// waitAndDrain blocks until a shutdown signal, then runs the full exit
// sequence: drain sessions, checkpoint the WAL, close the engine.
// Split out of main so tests can drive it with a fake signal channel.
func waitAndDrain(srv *netserver.Server, eng *engine.DB, sig <-chan os.Signal, drainTimeout time.Duration) error {
	s := <-sig
	fmt.Printf("aimserver: %v — draining (%v grace)\n", s, drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Printf("aimserver: drained (%d sessions served, %d statements, %d rows streamed)\n",
		st.SessionsTotal, st.StmtsTotal, st.RowsStreamed)
	if err := eng.WALCheckpoint(); err != nil {
		return err
	}
	return eng.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aimserver:", err)
	os.Exit(1)
}
