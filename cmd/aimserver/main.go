// Command aimserver serves an AIM-II database over the netproto wire
// protocol so any number of aimnet clients (including aimsql -connect)
// can share one engine.
//
// Usage:
//
//	aimserver [-db DIR] [-addr HOST:PORT] [-demo] [flags]
//
// Without -db the database is in-memory and vanishes on exit. -demo
// preloads the paper's office fixtures. The server applies admission
// control (-max-sessions, -max-stmts with a bounded wait queue) and
// sheds excess load with typed overload errors carrying a retry-after
// hint; -stmt-timeout and -idle-timeout bound statements and idle
// sessions.
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting,
// refuses new statements, lets in-flight ones finish up to
// -drain-timeout (then cancels them), tears every session down with
// its transaction rolled back and zero pinned pages, checkpoints the
// WAL, and closes the engine.
//
// With -follow PRIMARY the server is a WAL-shipping read replica: it
// bootstraps -db from the primary's checkpoint snapshot (or recovers
// an existing replica directory and catches up incrementally), applies
// the primary's committed log continuously, and serves read-only
// statements at its replayed horizon; writes fail with a typed
// read-only error. Promote a stopped replica by restarting aimserver
// on the same -db without -follow.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	aim "repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netserver"
	"repro/internal/repl"
)

func main() {
	dir := flag.String("db", "", "database directory (empty = in-memory)")
	addr := flag.String("addr", "127.0.0.1:4477", "listen address")
	demo := flag.Bool("demo", false, "preload the paper's office fixtures")
	maxSessions := flag.Int("max-sessions", 256, "max concurrently open sessions")
	maxStmts := flag.Int("max-stmts", 64, "max concurrently executing statements")
	stmtTimeout := flag.Duration("stmt-timeout", 0, "per-statement timeout (0 = none)")
	idleTimeout := flag.Duration("idle-timeout", 0, "reap sessions idle this long (0 = never)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "grace for in-flight statements on shutdown")
	follow := flag.String("follow", "", "run as a read replica of this primary (HOST:PORT); requires -db")
	flag.Parse()

	srvOpts := netserver.Options{
		MaxSessions:   *maxSessions,
		MaxStatements: *maxStmts,
		StmtTimeout:   *stmtTimeout,
		IdleTimeout:   *idleTimeout,
		DrainTimeout:  *drainTimeout,
	}
	if *follow != "" {
		if *dir == "" {
			fatal(fmt.Errorf("-follow requires -db (the replica's directory)"))
		}
		if *demo {
			fatal(fmt.Errorf("-follow and -demo are mutually exclusive"))
		}
		runFollower(*follow, *dir, *addr, srvOpts)
		return
	}

	var eng *engine.DB
	if *demo {
		if *dir != "" {
			fmt.Fprintln(os.Stderr, "aimserver: -demo uses an in-memory database; -db ignored")
		}
		var err error
		eng, err = core.Office()
		if err != nil {
			fatal(err)
		}
	} else {
		db, err := aim.Open(aim.Options{Dir: *dir})
		if err != nil {
			fatal(err)
		}
		eng = db.Engine()
	}

	srv := netserver.New(eng, srvOpts)
	if err := srv.Start(*addr); err != nil {
		fatal(err)
	}
	fmt.Printf("aimserver listening on %s (max %d sessions, %d concurrent statements)\n",
		srv.Addr(), *maxSessions, *maxStmts)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if err := waitAndDrain(srv, eng, sig, *drainTimeout); err != nil {
		fatal(err)
	}
}

// waitAndDrain blocks until a shutdown signal, then runs the full exit
// sequence: drain sessions, checkpoint the WAL, close the engine.
// Split out of main so tests can drive it with a fake signal channel.
func waitAndDrain(srv *netserver.Server, eng *engine.DB, sig <-chan os.Signal, drainTimeout time.Duration) error {
	s := <-sig
	fmt.Printf("aimserver: %v — draining (%v grace)\n", s, drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Printf("aimserver: drained (%d sessions served, %d statements, %d rows streamed)\n",
		st.SessionsTotal, st.StmtsTotal, st.RowsStreamed)
	if err := eng.WALCheckpoint(); err != nil {
		return err
	}
	return eng.Close()
}

// replicaServer restarts the read-serving front end around the rare
// engine swap a mid-life re-bootstrap performs (the primary recycled
// the replica's position away): the repl hooks shut the server down
// before the old engine closes and start a fresh one on the new
// engine.
type replicaServer struct {
	addr string
	opts netserver.Options

	mu  sync.Mutex
	srv *netserver.Server
}

func (rs *replicaServer) start(db *engine.DB) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	srv := netserver.New(db, rs.opts)
	if err := srv.Start(rs.addr); err != nil {
		return err
	}
	rs.srv = srv
	return nil
}

func (rs *replicaServer) stop() *netserver.Server {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	srv := rs.srv
	rs.srv = nil
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), rs.opts.DrainTimeout)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return srv
}

// runFollower is aimserver's replica mode: follow the primary into
// -db, serve reads once the first consistent state exists, drain on
// signal.
func runFollower(primary, dir, addr string, srvOpts netserver.Options) {
	rs := &replicaServer{addr: addr, opts: srvOpts}
	f, err := repl.Start(repl.Options{
		Addr:         primary,
		Dir:          dir,
		BeforeReseed: func(*engine.DB) { rs.stop() },
		AfterReseed: func(db *engine.DB) {
			if err := rs.start(db); err != nil {
				fmt.Fprintln(os.Stderr, "aimserver: restarting replica server after reseed:", err)
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	// An existing directory recovers immediately; a fresh one serves
	// after the bootstrap snapshot lands (AfterReseed started the
	// server for us in that case).
	if db := f.DB(); db != nil {
		if err := rs.start(db); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("aimserver: bootstrapping replica of %s into %s ...\n", primary, dir)
		for f.DB() == nil {
			time.Sleep(50 * time.Millisecond)
			if err := f.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "aimserver: waiting for primary:", err)
				time.Sleep(time.Second)
			}
		}
	}
	fmt.Printf("aimserver: read replica of %s listening on %s\n", primary, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("aimserver: %v — draining replica\n", s)
	f.Stop() // freeze the horizon first so draining reads stay put
	if srv := rs.stop(); srv != nil {
		st := srv.Stats()
		fmt.Printf("aimserver: drained (%d sessions served, %d statements, %d rows streamed)\n",
			st.SessionsTotal, st.StmtsTotal, st.RowsStreamed)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aimserver:", err)
	os.Exit(1)
}
