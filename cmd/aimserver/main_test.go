package main

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/aimnet"
	"repro/internal/engine"
	"repro/internal/netserver"
)

// TestSignalDrainSequence drives the binary's exit path end to end:
// serve a client, deliver SIGTERM, and verify the drain → checkpoint →
// close sequence completes with the listener gone and the engine shut.
func TestSignalDrainSequence(t *testing.T) {
	eng, err := engine.Open(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := netserver.New(eng, netserver.Options{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	c, err := aimnet.Dial(srv.Addr(), aimnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Exec(ctx, `CREATE TABLE T (A INT); INSERT INTO T VALUES (1)`); err != nil {
		t.Fatal(err)
	}

	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- waitAndDrain(srv, eng, sig, 2*time.Second) }()
	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain sequence failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain sequence hung")
	}
	// The listener is gone and every session was torn down.
	if _, err := aimnet.Dial(srv.Addr(), aimnet.Options{MaxRetries: -1, DialTimeout: 500 * time.Millisecond}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
	st := srv.Stats()
	if st.SessionsOpen != 0 {
		t.Fatalf("%d sessions open after shutdown", st.SessionsOpen)
	}
	if st.SessionsTotal == 0 || st.StmtsTotal == 0 {
		t.Fatalf("implausible stats after serving traffic: %+v", st)
	}
}
